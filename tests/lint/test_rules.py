"""Per-rule fixture tests: each rule has at least one snippet that
produces a finding and one that passes.

Snippets are linted in-memory through :func:`repro.lint.lint_source`;
the ``module`` argument controls scope classification (a
``repro.p2p.*`` name lands in the default sim-path, ``repro.obs.*``
does not).
"""

import textwrap

import pytest

from repro.lint import LintConfig, lint_source

SIM_MODULE = "repro.p2p.fixture"
NON_SIM_MODULE = "repro.obs.fixture"


def findings_for(source, module=SIM_MODULE, *, select=None, **kwargs):
    result = lint_source(
        textwrap.dedent(source),
        module=module,
        select=select,
        **kwargs,
    )
    return result.findings


def rules_of(findings):
    return sorted({finding.rule for finding in findings})


class TestD1WallClock:
    def test_flags_time_monotonic_call_in_sim_path(self):
        findings = findings_for(
            """
            import time

            def elapsed():
                return time.monotonic()
            """,
            select=("D1",),
        )
        assert rules_of(findings) == ["D1"]
        assert "time.monotonic" in findings[0].message

    def test_flags_aliased_and_from_imports(self):
        findings = findings_for(
            """
            import time as t
            from time import time as wall
            from datetime import datetime

            def stamp():
                return t.time(), wall(), datetime.now()
            """,
            select=("D1",),
        )
        assert len(findings) == 3

    def test_flags_bare_reference_used_as_default(self):
        findings = findings_for(
            """
            import time

            def make(clock=time.monotonic):
                return clock()
            """,
            select=("D1",),
        )
        assert rules_of(findings) == ["D1"]

    def test_perf_counter_is_the_sanctioned_profiling_clock(self):
        assert not findings_for(
            """
            from time import perf_counter

            def profile():
                return perf_counter()
            """,
            select=("D1",),
        )

    def test_non_sim_path_module_passes(self):
        assert not findings_for(
            """
            import time

            def elapsed():
                return time.monotonic()
            """,
            module=NON_SIM_MODULE,
            select=("D1",),
        )

    def test_wallclock_allowlist_exempts_module(self):
        config = LintConfig(
            sim_path=("repro.p2p",),
            wallclock_allow=(SIM_MODULE,),
        )
        assert not findings_for(
            """
            import time

            def elapsed():
                return time.monotonic()
            """,
            config=config,
            select=("D1",),
        )


    def test_ops_telemetry_is_exempt_by_default(self):
        # The ops span layer exists to read the wall clock; the
        # default allowlist carves it out even when repro.obs is
        # pulled into the sim-path scope.
        config = LintConfig(sim_path=("repro.obs",))
        source = """
            import time

            def stamp():
                return time.time()
            """
        assert not findings_for(
            source,
            module="repro.obs.ops",
            config=config,
            select=("D1",),
        )
        # The exemption is the module, not the package: a sibling
        # under the same scope is still flagged.
        findings = findings_for(
            source,
            module="repro.obs.analyze",
            config=config,
            select=("D1",),
        )
        assert rules_of(findings) == ["D1"]


class TestD2GlobalRandom:
    def test_flags_global_generator_call(self):
        findings = findings_for(
            """
            import random

            def jitter():
                return random.random()
            """,
            select=("D2",),
        )
        assert rules_of(findings) == ["D2"]

    def test_flags_unseeded_random_instance(self):
        findings = findings_for(
            """
            import random

            def fresh():
                return random.Random()
            """,
            select=("D2",),
        )
        assert "un-seeded" in findings[0].message

    def test_flags_module_level_rng_even_when_seeded(self):
        findings = findings_for(
            """
            import random

            RNG = random.Random(7)
            """,
            select=("D2",),
        )
        assert "module-level" in findings[0].message

    def test_flags_numpy_global_state(self):
        findings = findings_for(
            """
            import numpy as np

            def sample():
                return np.random.randint(0, 10)
            """,
            select=("D2",),
        )
        assert rules_of(findings) == ["D2"]

    def test_seeded_instance_plumbing_passes(self):
        assert not findings_for(
            """
            import random

            def build(seed):
                rng = random.Random(seed)
                return rng.random()
            """,
            select=("D2",),
        )

    def test_seeded_numpy_generator_passes(self):
        assert not findings_for(
            """
            import numpy as np

            def build(seed):
                return np.random.default_rng(seed)
            """,
            select=("D2",),
        )

    def test_flags_unseeded_numpy_bit_generator(self):
        findings = findings_for(
            """
            import numpy as np

            def build():
                return np.random.Generator(np.random.PCG64())
            """,
            select=("D2",),
        )
        assert rules_of(findings) == ["D2"]
        assert "un-seeded" in findings[0].message

    def test_seeded_numpy_bit_generator_composition_passes(self):
        assert not findings_for(
            """
            import numpy as np

            def build(seed):
                streams = np.random.SeedSequence(seed).spawn(2)
                return [
                    np.random.Generator(np.random.PCG64(s))
                    for s in streams
                ]
            """,
            select=("D2",),
        )


class TestD3UnorderedIteration:
    def test_flags_for_over_set_typed_local(self):
        findings = findings_for(
            """
            def fanout(names):
                pending = set(names)
                for name in pending:
                    print(name)
            """,
            select=("D3",),
        )
        assert rules_of(findings) == ["D3"]
        assert "pending" in findings[0].message

    def test_flags_self_attribute_annotated_as_set(self):
        findings = findings_for(
            """
            class Peer:
                def __init__(self):
                    self._known: set[str] = set()

                def announce(self):
                    for name in self._known:
                        print(name)
            """,
            select=("D3",),
        )
        assert len(findings) == 1
        assert "self._known" in findings[0].message

    def test_flags_comprehension_and_keys_view(self):
        findings = findings_for(
            """
            def rates(flows, table):
                chosen = frozenset(flows)
                totals = [f.rate for f in chosen]
                for key in table.keys():
                    totals.append(key)
                return totals
            """,
            select=("D3",),
        )
        assert len(findings) == 2

    def test_flags_order_leaking_list_conversion(self):
        findings = findings_for(
            """
            def snapshot(names):
                live = set(names)
                return list(live)
            """,
            select=("D3",),
        )
        assert rules_of(findings) == ["D3"]

    def test_sorted_wrapper_passes(self):
        assert not findings_for(
            """
            def fanout(names):
                pending = set(names)
                for name in sorted(pending):
                    print(name)
            """,
            select=("D3",),
        )

    def test_membership_and_aggregates_pass(self):
        assert not findings_for(
            """
            def check(names, candidate):
                pending = set(names)
                return candidate in pending and len(pending) > 0
            """,
            select=("D3",),
        )

    def test_non_sim_path_module_passes(self):
        assert not findings_for(
            """
            def fanout(names):
                pending = set(names)
                for name in pending:
                    print(name)
            """,
            module=NON_SIM_MODULE,
            select=("D3",),
        )


class TestD4SpecPicklability:
    def test_flags_lambda_default(self):
        findings = findings_for(
            """
            from dataclasses import dataclass

            @dataclass
            class BadSpec:
                key = lambda self: 1
            """,
            module="repro.parallel.spec",
            select=("D4",),
        )
        assert rules_of(findings) == ["D4"]

    def test_flags_open_file_default(self):
        findings = findings_for(
            """
            from dataclasses import dataclass

            @dataclass
            class BadSpec:
                log = open("/tmp/x", "w")
            """,
            module="repro.parallel.spec",
            select=("D4",),
        )
        assert "open file" in findings[0].message

    def test_plain_defaults_pass(self):
        assert not findings_for(
            """
            from dataclasses import dataclass

            @dataclass(frozen=True, slots=True)
            class GoodSpec:
                seed: int = 1
                label: str = ""
            """,
            module="repro.parallel.spec",
            select=("D4",),
        )

    def test_lambda_outside_spec_modules_passes(self):
        assert not findings_for(
            """
            from dataclasses import dataclass

            @dataclass
            class Elsewhere:
                key = lambda self: 1
            """,
            module="repro.obs.fixture",
            select=("D4",),
        )


class TestD5NullPathPurity:
    def test_flags_unguarded_emit(self):
        findings = findings_for(
            """
            def receive(self, tracer, name):
                tracer.emit(dict(event="received", peer=f"{name}"))
            """,
            select=("D5",),
        )
        assert rules_of(findings) == ["D5"]

    def test_flags_emit_on_else_branch_of_guard(self):
        findings = findings_for(
            """
            def receive(self, tracer):
                if tracer.enabled:
                    pass
                else:
                    tracer.emit({"event": "received"})
            """,
            select=("D5",),
        )
        assert rules_of(findings) == ["D5"]

    def test_guarded_emit_passes(self):
        assert not findings_for(
            """
            def receive(self, name):
                if self._tracer.enabled:
                    self._tracer.emit({"peer": f"{name}"})
            """,
            select=("D5",),
        )

    def test_hoisted_guard_name_passes(self):
        assert not findings_for(
            """
            def run(self, tracer):
                tracing = tracer is not None and tracer.enabled
                if tracing:
                    tracer.emit({"event": "started"})
            """,
            select=("D5",),
        )

    def test_non_tracer_emit_passes(self):
        assert not findings_for(
            """
            def publish(self, bus):
                bus.emit("topic")
            """,
            select=("D5",),
        )


class TestE1RaiseHierarchy:
    def test_flags_builtin_raise_anywhere(self):
        findings = findings_for(
            """
            def check(value):
                if value < 0:
                    raise ValueError(f"bad {value}")
            """,
            module=NON_SIM_MODULE,
            select=("E1",),
        )
        assert rules_of(findings) == ["E1"]
        assert "ValueError" in findings[0].message

    def test_repro_errors_and_reraise_pass(self):
        assert not findings_for(
            """
            from repro.errors import ConfigurationError

            def check(value):
                if value < 0:
                    raise ConfigurationError(f"bad {value}")
                try:
                    return 1 / value
                except ZeroDivisionError as exc:
                    raise
            """,
            select=("E1",),
        )

    def test_not_implemented_error_passes(self):
        assert not findings_for(
            """
            class Base:
                def check(self):
                    raise NotImplementedError
            """,
            select=("E1",),
        )

    def test_raise_allowlist_exempts_module(self):
        config = LintConfig(raise_allow=("repro.tools",))
        assert not findings_for(
            """
            def boom():
                raise RuntimeError("fine here")
            """,
            module="repro.tools.scratch",
            config=config,
            select=("E1",),
        )


class TestCatalog:
    def test_every_rule_has_identity_and_hint(self):
        from repro.lint import RULE_CATALOG

        assert set(RULE_CATALOG) == {
            "D1", "D2", "D3", "D4", "D5", "E1",
        }
        for rule in RULE_CATALOG.values():
            assert rule.summary
            assert rule.hint
            assert rule.severity == "error"

    def test_unknown_rule_selection_raises(self):
        from repro.errors import LintError

        with pytest.raises(LintError, match="unknown rule id"):
            lint_source("x = 1", select=("NOPE",))
