"""``[tool.repro.lint]`` loading and scope resolution."""

import pytest

from repro.errors import LintError
from repro.lint import (
    DEFAULT_SIM_PATH,
    LintConfig,
    in_scope,
    load_config,
    module_name,
)


class TestLoadConfig:
    def test_missing_file_yields_defaults(self, tmp_path):
        config = load_config(tmp_path / "pyproject.toml")
        assert config == LintConfig()

    def test_table_overrides_kebab_and_snake_case(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro.lint]\n"
            'sim-path = ["repro.net"]\n'
            'raise_allow = ["repro.cli"]\n'
        )
        config = load_config(pyproject)
        assert config.sim_path == ("repro.net",)
        assert config.raise_allow == ("repro.cli",)
        # Untouched keys keep their defaults.
        assert config.spec_modules == ("repro.parallel.spec",)

    def test_unknown_key_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro.lint]\nsim-paths = []\n"
        )
        with pytest.raises(LintError, match="unknown"):
            load_config(pyproject)

    def test_non_list_value_rejected(self, tmp_path):
        pyproject = tmp_path / "pyproject.toml"
        pyproject.write_text(
            "[tool.repro.lint]\nselect = 'D1'\n"
        )
        with pytest.raises(LintError, match="list of strings"):
            load_config(pyproject)

    def test_repository_pyproject_parses(self):
        from pathlib import Path

        pyproject = Path(__file__).parents[2] / "pyproject.toml"
        config = load_config(pyproject)
        assert config.sim_path == DEFAULT_SIM_PATH
        assert "repro.obs.bench" in config.wallclock_allow


class TestScoping:
    def test_prefix_matches_self_and_submodules(self):
        prefixes = ("repro.p2p",)
        assert in_scope("repro.p2p", prefixes)
        assert in_scope("repro.p2p.leecher", prefixes)
        assert not in_scope("repro.p2p_extras", prefixes)
        assert not in_scope("repro.player", prefixes)

    def test_module_name_walks_package_chain(self, tmp_path):
        package = tmp_path / "pkg" / "sub"
        package.mkdir(parents=True)
        (tmp_path / "pkg" / "__init__.py").write_text("")
        (package / "__init__.py").write_text("")
        (package / "mod.py").write_text("x = 1\n")
        assert module_name(package / "mod.py") == "pkg.sub.mod"
        assert module_name(package / "__init__.py") == "pkg.sub"

    def test_bare_file_uses_stem(self, tmp_path):
        script = tmp_path / "scratch.py"
        script.write_text("x = 1\n")
        assert module_name(script) == "scratch"
