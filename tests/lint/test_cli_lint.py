"""``repro lint`` CLI: exit codes, filtering, formats, schema."""

import json
import textwrap

import pytest

from repro.cli import main
from repro.lint import LINT_SCHEMA, validate_payload

CLEAN_SOURCE = """
def add(left, right):
    return left + right
"""

# A file shaped like a sim-path module would be flagged; a bare tmp
# file is outside every configured scope, so the findings here come
# from scope-independent rules (E1).
DIRTY_SOURCE = """
def check(value):
    if value < 0:
        raise ValueError(f"bad {value}")
"""

SUPPRESSED_SOURCE = """
def check(value):
    if value < 0:
        # repro: lint-ok[E1] fixture exercising suppression
        raise ValueError(f"bad {value}")
"""

STALE_SOURCE = """
def check(value):  # repro: lint-ok[E1] nothing to suppress here
    return value
"""


@pytest.fixture
def write(tmp_path):
    def _write(source, name="mod.py"):
        path = tmp_path / name
        path.write_text(textwrap.dedent(source), encoding="utf-8")
        return str(path)

    return _write


class TestExitCodes:
    def test_clean_file_exits_0(self, capsys, write):
        assert main(["lint", write(CLEAN_SOURCE)]) == 0
        assert "clean" in capsys.readouterr().out

    def test_findings_exit_1(self, capsys, write):
        assert main(["lint", write(DIRTY_SOURCE)]) == 1
        out = capsys.readouterr().out
        assert "E1" in out
        assert "hint:" in out

    def test_suppressed_finding_exits_0(self, capsys, write):
        assert main(["lint", write(SUPPRESSED_SOURCE)]) == 0

    def test_stale_suppression_exits_1(self, capsys, write):
        assert main(["lint", write(STALE_SOURCE)]) == 1
        assert "unused suppression" in capsys.readouterr().out

    def test_missing_path_exits_2(self, capsys, tmp_path):
        assert main(["lint", str(tmp_path / "absent.py")]) == 2
        assert "error:" in capsys.readouterr().err

    def test_unknown_rule_exits_2(self, capsys, write):
        path = write(CLEAN_SOURCE)
        assert main(["lint", path, "--select", "NOPE"]) == 2
        assert "unknown rule id" in capsys.readouterr().err

    def test_unparseable_source_exits_2(self, capsys, write):
        path = write("def broken(:\n")
        assert main(["lint", path]) == 2
        assert "cannot parse" in capsys.readouterr().err

    def test_bad_format_choice_exits_2(self, write):
        with pytest.raises(SystemExit) as excinfo:
            main(["lint", write(CLEAN_SOURCE), "--format", "xml"])
        assert excinfo.value.code == 2


class TestFiltering:
    def test_ignore_silences_the_rule(self, capsys, write):
        path = write(DIRTY_SOURCE)
        assert main(["lint", path, "--ignore", "E1"]) == 0

    def test_select_other_rule_passes(self, capsys, write):
        path = write(DIRTY_SOURCE)
        assert main(["lint", path, "--select", "D1"]) == 0

    def test_comma_separated_select(self, capsys, write):
        path = write(DIRTY_SOURCE)
        assert main(["lint", path, "--select", "D1,E1"]) == 1


class TestJsonFormat:
    def run_json(self, capsys, path, *extra):
        code = main(["lint", path, "--format", "json", *extra])
        payload = json.loads(capsys.readouterr().out)
        return code, payload

    def test_payload_validates_against_schema(self, capsys, write):
        code, payload = self.run_json(capsys, write(DIRTY_SOURCE))
        assert code == 1
        assert validate_payload(payload) is payload
        assert payload["schema"] == LINT_SCHEMA
        assert not payload["clean"]
        (finding,) = payload["findings"]
        assert finding["rule"] == "E1"
        assert finding["line"] == 4
        assert finding["hint"]

    def test_clean_payload(self, capsys, write):
        code, payload = self.run_json(capsys, write(CLEAN_SOURCE))
        assert code == 0
        assert payload["clean"]
        assert payload["findings"] == []
        assert payload["statistics"]["modules"] == 1
        assert [r["id"] for r in payload["catalog"]["rules"]] == [
            "D1", "D2", "D3", "D4", "D5", "E1",
        ]

    def test_select_recorded_in_payload(self, capsys, write):
        _, payload = self.run_json(
            capsys, write(CLEAN_SOURCE), "--select", "D1,D2"
        )
        assert payload["select"] == ["D1", "D2"]

    def test_validate_rejects_drift(self):
        from repro.errors import LintError

        with pytest.raises(LintError, match="unrecognised"):
            validate_payload({"schema": "repro.lint/999"})
        with pytest.raises(LintError, match="missing"):
            validate_payload({"schema": LINT_SCHEMA})


class TestStatistics:
    def test_statistics_block_printed(self, capsys, write):
        path = write(SUPPRESSED_SOURCE)
        assert main(["lint", path, "--statistics"]) == 0
        out = capsys.readouterr().out
        assert "modules scanned: 1" in out
        assert "suppressed: 1" in out


class TestVersionIntegration:
    def test_version_lists_rule_catalog(self, capsys):
        with pytest.raises(SystemExit) as excinfo:
            main(["--version"])
        assert excinfo.value.code == 0
        out = capsys.readouterr().out
        assert f"lint {LINT_SCHEMA} catalog v1" in out
        assert "D1 D2 D3 D4 D5 E1" in out
        # The environment block stays alongside (PR 6 behaviour).
        assert "python " in out
