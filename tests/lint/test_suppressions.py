"""Suppression-comment parsing, matching, and staleness detection."""

import textwrap

import pytest

from repro.errors import LintError
from repro.lint import lint_source, parse_suppressions

SIM_MODULE = "repro.p2p.fixture"


def lint(source, **kwargs):
    return lint_source(
        textwrap.dedent(source), module=SIM_MODULE, **kwargs
    )


class TestParsing:
    def test_same_line_and_standalone_forms(self):
        suppressions = parse_suppressions(
            textwrap.dedent(
                """
                x = 1  # repro: lint-ok[D3] commutative fold
                # repro: lint-ok[D1] wall elapsed for reports
                y = 2
                """
            ),
            "mod.py",
        )
        assert len(suppressions) == 2
        same_line, standalone = suppressions
        assert same_line.rules == ("D3",)
        assert not same_line.standalone
        assert same_line.target_line == same_line.line
        assert standalone.standalone
        assert standalone.target_line == standalone.line + 1

    def test_comma_separated_rule_list(self):
        (suppression,) = parse_suppressions(
            "x = 1  # repro: lint-ok[D1, D3] host timing fan-out\n",
            "mod.py",
        )
        assert suppression.rules == ("D1", "D3")

    def test_marker_inside_string_literal_ignored(self):
        assert not parse_suppressions(
            'x = "# repro: lint-ok[D3] not a comment"\n', "mod.py"
        )

    def test_reason_is_mandatory(self):
        with pytest.raises(LintError, match="needs a reason"):
            parse_suppressions(
                "x = 1  # repro: lint-ok[D3]\n", "mod.py"
            )


class TestApplication:
    UNGUARDED = """
    import time

    def elapsed():
        return time.monotonic()  # repro: lint-ok[D1] host timing
    """

    def test_suppression_silences_the_finding(self):
        result = lint(self.UNGUARDED, select=("D1",))
        assert result.clean
        assert not result.findings
        assert len(result.suppressed) == 1
        assert result.suppressed[0].rule == "D1"

    def test_standalone_comment_covers_next_line(self):
        result = lint(
            """
            import time

            # repro: lint-ok[D1] host timing for reports
            def elapsed(clock=time.monotonic):
                return clock()
            """,
            select=("D1",),
        )
        assert result.clean

    def test_wrong_rule_id_does_not_suppress(self):
        result = lint(
            """
            import time

            def elapsed():
                return time.monotonic()  # repro: lint-ok[D3] wrong id
            """,
        )
        # The D1 finding survives AND the D3 comment is stale.
        assert [f.rule for f in result.findings] == ["D1"]
        assert [u.rule for u in result.unused_suppressions] == ["D3"]
        assert not result.clean

    def test_unused_suppression_fails_the_run(self):
        result = lint(
            """
            x = 1  # repro: lint-ok[D3] nothing here to suppress
            """
        )
        assert not result.findings
        assert len(result.unused_suppressions) == 1
        assert not result.clean

    def test_unknown_rule_id_is_always_stale(self):
        result = lint(
            """
            x = 1  # repro: lint-ok[D9] no such rule
            """,
            select=("D1",),
        )
        assert [u.rule for u in result.unused_suppressions] == ["D9"]
        assert "unknown rule" in result.unused_suppressions[0].reason

    def test_deselected_rule_keeps_suppression_quiet(self):
        # A --select D2 run must not flag every D1 annotation in the
        # tree as stale.
        result = lint(self.UNGUARDED, select=("D2",))
        assert result.clean

    def test_statistics_count_suppressed_findings(self):
        statistics = lint(self.UNGUARDED, select=("D1",)).statistics()
        assert statistics["suppressed"] == 1
        assert statistics["per_rule"]["D1"]["suppressed"] == 1
        assert statistics["per_rule"]["D1"]["findings"] == 0
