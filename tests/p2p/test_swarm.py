"""Integration tests for full swarm sessions."""

import pytest

from repro.core.policy import FixedPoolPolicy
from repro.core.splicer import DurationSplicer, GopSplicer
from repro.errors import ConfigurationError, SwarmError
from repro.p2p.churn import ChurnConfig
from repro.p2p.swarm import Swarm, SwarmConfig, SwarmResult
from repro.units import kB_per_s


def small_config(**overrides):
    defaults = dict(
        bandwidth=kB_per_s(512),
        seeder_bandwidth=kB_per_s(1024),
        n_leechers=4,
        seed=3,
        join_stagger=1.0,
        max_time=600.0,
    )
    defaults.update(overrides)
    return SwarmConfig(**defaults)


@pytest.fixture(scope="module")
def splice(short_video):
    return DurationSplicer(4.0).splice(short_video)


class TestConfigValidation:
    def test_zero_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            SwarmConfig(bandwidth=0)

    def test_zero_leechers_rejected(self):
        with pytest.raises(ConfigurationError):
            SwarmConfig(bandwidth=1, n_leechers=0)

    def test_negative_stagger_rejected(self):
        with pytest.raises(ConfigurationError):
            SwarmConfig(bandwidth=1, join_stagger=-1)


class TestFullSession(object):
    def test_everyone_finishes(self, splice):
        result = Swarm(splice, small_config()).run()
        assert result.all_finished
        assert len(result.finished_metrics()) == 4

    def test_metrics_per_peer(self, splice):
        result = Swarm(splice, small_config()).run()
        assert set(result.metrics) == {
            "peer-1",
            "peer-2",
            "peer-3",
            "peer-4",
        }
        for metrics in result.metrics.values():
            assert metrics.startup_time > 0
            assert metrics.bytes_downloaded == pytest.approx(
                splice.total_size
            )

    def test_deterministic_for_seed(self, splice):
        a = Swarm(splice, small_config(seed=9)).run()
        b = Swarm(splice, small_config(seed=9)).run()
        assert a.mean_startup_time() == b.mean_startup_time()
        assert a.mean_stall_count() == b.mean_stall_count()

    def test_peers_share_upload_load(self, splice):
        result = Swarm(splice, small_config(n_leechers=6)).run()
        assert result.peer_bytes_uploaded > 0

    def test_control_messages_flow(self, splice):
        result = Swarm(splice, small_config()).run()
        assert result.control_messages > 10

    def test_gop_splicing_also_streams(self, short_video):
        gop = GopSplicer().splice(short_video)
        result = Swarm(gop, small_config()).run()
        assert result.all_finished

    def test_seeder_bandwidth_defaults_to_peer(self, splice):
        config = SwarmConfig(
            bandwidth=kB_per_s(512),
            n_leechers=2,
            seed=1,
            max_time=600.0,
        )
        swarm = Swarm(splice, config)
        assert swarm.seeder.node.bandwidth == pytest.approx(
            kB_per_s(512)
        )

    def test_seeder_control_latency_is_seeder_rtt(self, splice):
        swarm = Swarm(splice, small_config())
        delay = swarm.control.delay("peer-1", "seeder")
        assert delay == pytest.approx(0.25)  # half of the 500 ms RTT

    def test_peer_control_latency_is_peer_rtt(self, splice):
        swarm = Swarm(splice, small_config())
        delay = swarm.control.delay("peer-1", "peer-2")
        assert delay == pytest.approx(0.025)


class TestPolicies:
    def test_fixed_policy_plumbed(self, splice):
        config = small_config(policy=FixedPoolPolicy(2))
        swarm = Swarm(splice, config)
        result = swarm.run()
        assert result.all_finished

    def test_origin_one_at_a_time(self, splice):
        config = small_config(origin_one_at_a_time=True)
        swarm = Swarm(splice, config)
        assert swarm.leechers[0].config.cdn_sources == frozenset(
            {"seeder"}
        )
        result = swarm.run()
        assert result.all_finished


class TestChurnIntegration:
    def test_departures_recorded(self, splice):
        config = small_config(
            n_leechers=6,
            churn=ChurnConfig(
                fraction=0.9, mean_lifetime=10.0, min_lifetime=3.0
            ),
        )
        result = Swarm(splice, config).run()
        assert len(result.departed) > 0

    def test_survivors_still_finish(self, splice):
        config = small_config(
            n_leechers=6,
            churn=ChurnConfig(
                fraction=0.5, mean_lifetime=15.0, min_lifetime=5.0
            ),
        )
        result = Swarm(splice, config).run()
        departed = set(result.departed)
        survivors = [
            m
            for name, m in result.metrics.items()
            if name not in departed
        ]
        assert survivors
        assert all(m.finished for m in survivors)


class TestSwarmResult:
    def test_aggregates_raise_without_finishers(self):
        result = SwarmResult(
            metrics={},
            seeder_bytes_uploaded=0,
            peer_bytes_uploaded=0,
            control_messages=0,
            departed=(),
            end_time=0.0,
        )
        with pytest.raises(SwarmError):
            result.mean_stall_count()
        with pytest.raises(SwarmError):
            result.mean_startup_time()
