"""Tests for the swarm tracker."""

import random

import pytest

from repro.errors import SwarmError
from repro.p2p.tracker import Tracker


class TestMembership:
    def test_register_and_contains(self):
        tracker = Tracker()
        tracker.register("a")
        assert "a" in tracker
        assert len(tracker) == 1

    def test_duplicate_rejected(self):
        tracker = Tracker()
        tracker.register("a")
        with pytest.raises(SwarmError):
            tracker.register("a")

    def test_unregister(self):
        tracker = Tracker()
        tracker.register("a")
        tracker.unregister("a")
        assert "a" not in tracker

    def test_unregister_unknown_is_noop(self):
        Tracker().unregister("ghost")

    def test_join_order_preserved(self):
        tracker = Tracker()
        for name in ("c", "a", "b"):
            tracker.register(name)
        assert tracker.peer_ids == ["c", "a", "b"]


class TestPeersFor:
    def test_excludes_requester(self):
        tracker = Tracker()
        tracker.register("a")
        tracker.register("b")
        assert tracker.peers_for("a") == ["b"]

    def test_requester_not_registered(self):
        tracker = Tracker()
        tracker.register("a")
        assert tracker.peers_for("stranger") == ["a"]

    def test_limit(self):
        tracker = Tracker()
        for i in range(5):
            tracker.register(f"p{i}")
        assert tracker.peers_for("p4", limit=2) == ["p0", "p1"]


class TestSample:
    def test_sample_smaller_than_population(self):
        tracker = Tracker()
        for i in range(10):
            tracker.register(f"p{i}")
        sample = tracker.sample("p0", 3, random.Random(1))
        assert len(sample) == 3
        assert "p0" not in sample

    def test_sample_larger_returns_all(self):
        tracker = Tracker()
        tracker.register("a")
        tracker.register("b")
        assert sorted(tracker.sample("a", 10, random.Random(1))) == ["b"]

    def test_sample_deterministic_for_seed(self):
        tracker = Tracker()
        for i in range(10):
            tracker.register(f"p{i}")
        a = tracker.sample("p0", 4, random.Random(9))
        b = tracker.sample("p0", 4, random.Random(9))
        assert a == b
