"""Selectors and estimators exercised inside full swarm sessions."""

import pytest

from repro.bwest import WindowedThroughputEstimator
from repro.core.splicer import DurationSplicer
from repro.p2p.selection import (
    RarestFirstSelector,
    SequentialSelector,
    WindowedRarestSelector,
)
from repro.p2p.swarm import Swarm, SwarmConfig
from repro.units import kB_per_s


def config(**overrides):
    defaults = dict(
        bandwidth=kB_per_s(512),
        seeder_bandwidth=kB_per_s(2048),
        n_leechers=4,
        seed=21,
        join_stagger=1.0,
        max_time=600.0,
    )
    defaults.update(overrides)
    return SwarmConfig(**defaults)


@pytest.fixture(scope="module")
def splice(short_video):
    return DurationSplicer(2.0).splice(short_video)


class TestSelectorsInSwarm:
    @pytest.mark.parametrize(
        "selector",
        [
            SequentialSelector(),
            RarestFirstSelector(),
            WindowedRarestSelector(urgent_window=2, lookahead=4),
        ],
        ids=lambda s: s.name,
    )
    def test_every_selector_completes_playback(self, splice, selector):
        result = Swarm(splice, config(selector=selector)).run()
        assert result.all_finished

    def test_windowed_selector_diversifies_inventory(self, splice):
        # Mid-session, windowed-rarest peers should hold a less
        # strictly-prefix-shaped inventory than sequential peers.
        def prefix_fraction(selector):
            swarm = Swarm(splice, config(selector=selector))
            fractions = []

            def sample():
                for leecher in swarm.leechers:
                    owned = leecher.owned
                    if not owned:
                        continue
                    run = 0
                    while run in owned:
                        run += 1
                    fractions.append(run / len(owned))

            swarm.sim.schedule(6.0, sample)
            swarm.run()
            return sum(fractions) / max(1, len(fractions))

        sequential = prefix_fraction(SequentialSelector())
        windowed = prefix_fraction(
            WindowedRarestSelector(urgent_window=1, lookahead=6)
        )
        assert windowed <= sequential + 1e-9


class TestEstimatorInSwarm:
    def test_estimator_factory_feeds_estimators(self, splice):
        swarm = Swarm(
            splice,
            config(estimator_factory=WindowedThroughputEstimator),
        )
        mid_session = []

        def sample():
            for leecher in swarm.leechers:
                mid_session.append(
                    leecher.config.estimator.estimate(swarm.sim.now)
                )

        swarm.sim.schedule(6.0, sample)
        result = swarm.run()
        assert result.all_finished
        for leecher in swarm.leechers:
            assert leecher.config.estimator is not None
        # Mid-session at least one estimator had converged.
        assert any(value is not None for value in mid_session)

    def test_estimate_is_plausible(self, splice):
        swarm = Swarm(
            splice,
            config(estimator_factory=WindowedThroughputEstimator),
        )
        estimates = []

        def sample():
            for leecher in swarm.leechers:
                value = leecher.config.estimator.estimate(swarm.sim.now)
                if value is not None:
                    estimates.append(value)

        swarm.sim.schedule(6.0, sample)
        swarm.run()
        assert estimates
        for value in estimates:
            # Within an order of magnitude of the configured capacity.
            assert kB_per_s(512) / 20 < value < kB_per_s(512) * 20
