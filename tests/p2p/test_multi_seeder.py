"""Fault-tolerance tests: seeder replicas and origin failure."""

import pytest

from repro.core.splicer import DurationSplicer
from repro.errors import ConfigurationError
from repro.p2p.swarm import Swarm, SwarmConfig
from repro.units import kB_per_s


def config(**overrides):
    defaults = dict(
        bandwidth=kB_per_s(512),
        seeder_bandwidth=kB_per_s(1024),
        n_leechers=3,
        seed=11,
        join_stagger=1.0,
        max_time=600.0,
    )
    defaults.update(overrides)
    return SwarmConfig(**defaults)


@pytest.fixture(scope="module")
def splice(short_video):
    return DurationSplicer(4.0).splice(short_video)


class TestSeederReplicas:
    def test_replicas_join_tracker(self, splice):
        swarm = Swarm(splice, config(n_seeders=3))
        assert len(swarm.extra_seeders) == 2
        assert "seeder-2" in swarm.tracker
        assert "seeder-3" in swarm.tracker

    def test_replicas_share_upload_load(self, splice):
        swarm = Swarm(splice, config(n_seeders=2, n_leechers=4))
        result = swarm.run()
        assert result.all_finished
        replica_bytes = sum(
            seeder.bytes_uploaded for seeder in swarm.extra_seeders
        )
        assert replica_bytes > 0

    def test_invalid_count_rejected(self):
        with pytest.raises(ConfigurationError):
            config(n_seeders=0)


class TestOriginFailure:
    def test_swarm_survives_primary_seeder_death(self, splice):
        swarm = Swarm(splice, config(n_seeders=2))
        # Kill the manifest origin once everyone has joined and the
        # manifests are out.
        swarm.sim.schedule(10.0, swarm.seeder.leave)
        result = swarm.run()
        assert result.all_finished

    def test_single_seeder_death_strands_late_segments(self, splice):
        swarm = Swarm(splice, config(n_seeders=1, n_leechers=2))
        swarm.sim.schedule(4.0, swarm.seeder.leave)
        result = swarm.run()
        # With the only full copy gone this early, at least one peer
        # cannot finish; the session must still terminate cleanly.
        assert not result.all_finished

    def test_manifest_retry_reaches_revived_origin(self, splice):
        # A leecher that joins while the origin is unreachable keeps
        # retrying; the manifest eventually arrives once reachable.
        swarm = Swarm(splice, config(n_leechers=2, join_stagger=0.0))
        late = swarm.leechers[1]
        # Simulate unreachability by dropping the first request: start
        # the leecher before the seeder is registered is not possible
        # here, so instead verify the retry schedule exists and is
        # harmless when the manifest arrives normally.
        result = swarm.run()
        assert late.manifest is not None
        assert result.all_finished
