"""Tests for the protocol message codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.p2p.messages import (
    Bitfield,
    Cancel,
    Goodbye,
    Handshake,
    Have,
    Manifest,
    ManifestRequest,
    Piece,
    Request,
    RequestRejected,
    decode_message,
    encode_message,
)

peer_ids = st.text(min_size=1, max_size=24)
indices = st.integers(min_value=0, max_value=2**32 - 1)


def roundtrip(message):
    return decode_message(encode_message(message))


class TestRoundTrips:
    def test_handshake(self):
        msg = Handshake(peer_id="peer-1", info_hash="ab" * 20)
        assert roundtrip(msg) == msg

    def test_manifest_request(self):
        msg = ManifestRequest(peer_id="peer-2")
        assert roundtrip(msg) == msg

    def test_manifest(self):
        msg = Manifest(
            info_hash="deadbeef",
            segment_sizes=(100, 2_000_000, 30),
            segment_durations=(2.0, 4.0, 1.5),
            peers=("peer-1", "peer-2"),
        )
        assert roundtrip(msg) == msg

    def test_manifest_empty_peers(self):
        msg = Manifest(
            info_hash="x",
            segment_sizes=(1,),
            segment_durations=(1.0,),
        )
        assert roundtrip(msg) == msg

    def test_bitfield(self):
        msg = Bitfield(peer_id="p", indices=(0, 3, 17))
        assert roundtrip(msg) == msg

    def test_have(self):
        assert roundtrip(Have(peer_id="p", index=9)) == Have("p", 9)

    def test_request_default_not_urgent(self):
        msg = roundtrip(Request(peer_id="p", index=4))
        assert msg == Request("p", 4, urgent=False)

    def test_request_urgent(self):
        msg = roundtrip(Request(peer_id="p", index=4, urgent=True))
        assert msg.urgent

    def test_request_rejected_busy_flag(self):
        msg = roundtrip(RequestRejected(peer_id="p", index=4, busy=True))
        assert msg.busy

    def test_piece(self):
        msg = Piece(peer_id="p", index=2, size=512_000)
        assert roundtrip(msg) == msg

    def test_goodbye(self):
        assert roundtrip(Goodbye(peer_id="p")) == Goodbye("p")

    def test_cancel(self):
        assert roundtrip(Cancel(peer_id="p", index=5)) == Cancel("p", 5)

    def test_unicode_peer_id(self):
        msg = Handshake(peer_id="пир-1", info_hash="h")
        assert roundtrip(msg) == msg


class TestValidation:
    def test_manifest_length_mismatch_rejected(self):
        with pytest.raises(WireFormatError):
            Manifest(
                info_hash="x",
                segment_sizes=(1, 2),
                segment_durations=(1.0,),
            )

    def test_manifest_segment_count(self):
        msg = Manifest(
            info_hash="x",
            segment_sizes=(1, 2),
            segment_durations=(1.0, 2.0),
        )
        assert msg.segment_count == 2

    def test_empty_bytes_rejected(self):
        with pytest.raises(WireFormatError):
            decode_message(b"")

    def test_unknown_id_rejected(self):
        with pytest.raises(WireFormatError):
            decode_message(b"\xee")

    def test_truncated_body_rejected(self):
        data = encode_message(Piece(peer_id="p", index=1, size=10))
        with pytest.raises(WireFormatError):
            decode_message(data[:-3])

    def test_trailing_garbage_rejected(self):
        data = encode_message(Have(peer_id="p", index=1))
        with pytest.raises(WireFormatError):
            decode_message(data + b"junk")


class TestPropertyRoundTrips:
    @given(peer_id=peer_ids, info_hash=st.text(max_size=40))
    def test_handshake(self, peer_id, info_hash):
        msg = Handshake(peer_id=peer_id, info_hash=info_hash)
        assert roundtrip(msg) == msg

    @given(
        info_hash=st.text(max_size=40),
        layout=st.lists(
            st.tuples(
                st.integers(min_value=0, max_value=2**63 - 1),
                st.floats(
                    min_value=0.01,
                    max_value=1e6,
                    allow_nan=False,
                    allow_infinity=False,
                ),
            ),
            max_size=20,
        ),
        peers=st.lists(peer_ids, max_size=8),
    )
    def test_manifest(self, info_hash, layout, peers):
        msg = Manifest(
            info_hash=info_hash,
            segment_sizes=tuple(size for size, _ in layout),
            segment_durations=tuple(d for _, d in layout),
            peers=tuple(peers),
        )
        assert roundtrip(msg) == msg

    @given(peer_id=peer_ids, idx=indices, urgent=st.booleans())
    def test_request(self, peer_id, idx, urgent):
        msg = Request(peer_id=peer_id, index=idx, urgent=urgent)
        assert roundtrip(msg) == msg

    @given(peer_id=peer_ids, indices_list=st.lists(indices, max_size=50))
    def test_bitfield(self, peer_id, indices_list):
        msg = Bitfield(peer_id=peer_id, indices=tuple(indices_list))
        assert roundtrip(msg) == msg

    @given(
        peer_id=peer_ids,
        idx=indices,
        size=st.integers(min_value=0, max_value=2**63 - 1),
    )
    def test_piece(self, peer_id, idx, size):
        msg = Piece(peer_id=peer_id, index=idx, size=size)
        assert roundtrip(msg) == msg


class TestMessageIds:
    def test_ids_are_unique(self):
        ids = [
            Handshake.MSG_ID,
            ManifestRequest.MSG_ID,
            Manifest.MSG_ID,
            Bitfield.MSG_ID,
            Have.MSG_ID,
            Request.MSG_ID,
            RequestRejected.MSG_ID,
            Piece.MSG_ID,
            Goodbye.MSG_ID,
            Cancel.MSG_ID,
        ]
        assert len(set(ids)) == len(ids)

    def test_first_byte_is_msg_id(self):
        data = encode_message(Goodbye(peer_id="p"))
        assert data[0] == Goodbye.MSG_ID
