"""Tests for the leecher's download logic."""

import pytest

from repro.core.policy import AdaptivePoolPolicy, FixedPoolPolicy
from repro.errors import ConfigurationError
from repro.p2p.leecher import LeecherConfig
from repro.p2p.messages import Have, RequestRejected
from repro.player.player import PlayerState
from repro.units import kB_per_s

from .helpers import MiniSwarm, make_splice


class TestLeecherConfig:
    def test_timeout_scales_with_size(self):
        config = LeecherConfig(
            policy=AdaptivePoolPolicy(), bandwidth_hint=100_000.0
        )
        small = config.request_timeout(10_000)
        large = config.request_timeout(1_000_000)
        assert large > small

    def test_invalid_hint_rejected(self):
        with pytest.raises(ConfigurationError):
            LeecherConfig(policy=AdaptivePoolPolicy(), bandwidth_hint=0)

    def test_invalid_timeouts_rejected(self):
        with pytest.raises(ConfigurationError):
            LeecherConfig(
                policy=AdaptivePoolPolicy(),
                bandwidth_hint=1.0,
                request_timeout_base=0,
            )


class TestSessionLifecycle:
    def test_full_session_downloads_everything(self):
        swarm = MiniSwarm(n_leechers=1)
        leecher = swarm.leechers[0]
        leecher.start()
        swarm.run()
        assert leecher.player is not None
        assert leecher.player.state is PlayerState.FINISHED
        assert leecher.metrics.finished
        assert leecher.metrics.segments_downloaded == len(swarm.splice)

    def test_start_is_idempotent(self):
        swarm = MiniSwarm(n_leechers=1)
        leecher = swarm.leechers[0]
        leecher.start()
        leecher.start()
        swarm.run(until=1.0)
        assert leecher.manifest is not None

    def test_session_start_dated_at_join(self):
        swarm = MiniSwarm(n_leechers=1)
        leecher = swarm.leechers[0]
        swarm.sim.schedule(5.0, leecher.start)
        swarm.run()
        assert leecher.metrics.session_start == pytest.approx(5.0)
        assert leecher.metrics.startup_time > 0

    def test_bytes_accounted(self):
        swarm = MiniSwarm(n_leechers=1)
        leecher = swarm.leechers[0]
        leecher.start()
        swarm.run()
        assert leecher.metrics.bytes_downloaded == pytest.approx(
            swarm.splice.total_size
        )


class TestSequentialSelection:
    def test_downloads_arrive_in_order_with_pool_one(self):
        swarm = MiniSwarm(
            n_leechers=1, policy=FixedPoolPolicy(1), batch_mode=True
        )
        leecher = swarm.leechers[0]
        order = []
        original = leecher.on_segment_received

        def spy(src, index, size):
            order.append(index)
            original(src, index, size)

        leecher.on_segment_received = spy
        leecher.start()
        swarm.run()
        assert order == sorted(order)

    def test_pool_respects_policy(self):
        swarm = MiniSwarm(
            n_leechers=1, policy=FixedPoolPolicy(3), batch_mode=False
        )
        leecher = swarm.leechers[0]
        leecher.start()
        swarm.run(until=0.5)
        assert len(leecher.inflight) <= 3

    def test_batch_mode_waits_for_whole_pool(self):
        swarm = MiniSwarm(
            n_leechers=1, policy=FixedPoolPolicy(2), batch_mode=True
        )
        leecher = swarm.leechers[0]
        snapshots = []

        def watch():
            snapshots.append(len(leecher.inflight))
            swarm.sim.schedule(0.2, watch)

        leecher.start()
        swarm.sim.schedule(0.3, watch)
        swarm.run(until=8.0)
        # Batch semantics: the pool is filled to 2, drains to 0, refills.
        assert 1 not in snapshots or 2 in snapshots


class TestAvailabilityAndSources:
    def test_have_updates_availability(self):
        swarm = MiniSwarm(n_leechers=2)
        a, b = swarm.leechers
        a.start()
        swarm.run(until=1.0)
        a.handle_message(b.name, Have(peer_id=b.name, index=0))
        assert 0 in a._availability[b.name]

    def test_prefers_peer_over_seeder(self):
        swarm = MiniSwarm(n_leechers=2)
        a, b = swarm.leechers
        a.start()
        swarm.run(until=1.0)
        a._availability[b.name] = {5}
        assert a._choose_source(5) == b.name

    def test_falls_back_to_seeder(self):
        swarm = MiniSwarm(n_leechers=2)
        a, _ = swarm.leechers
        a.start()
        swarm.run(until=1.0)
        assert a._choose_source(5) == "seeder"

    def test_exclude_removes_candidate(self):
        swarm = MiniSwarm(n_leechers=1)
        a = swarm.leechers[0]
        a.start()
        swarm.run(until=1.0)
        assert a._choose_source(5, exclude="seeder") is None

    def test_rejection_triggers_retry(self):
        swarm = MiniSwarm(n_leechers=2)
        a, b = swarm.leechers
        a.start()
        swarm.run(until=1.0)
        # Fake: a believes b has segment 5 and requests from it.
        index = max(a.player.buffer.missing())
        a._availability[b.name] = {index}
        source_before = a.inflight.get(index)
        a.handle_message(
            b.name, RequestRejected(peer_id=b.name, index=index)
        )
        swarm.run(until=60.0)
        assert a.player.buffer.complete


class TestBandwidthEstimate:
    def test_hint_used_without_estimator(self):
        swarm = MiniSwarm(n_leechers=1, bandwidth=kB_per_s(512))
        leecher = swarm.leechers[0]
        assert leecher.bandwidth_estimate() == pytest.approx(
            kB_per_s(512)
        )

    def test_estimator_overrides_hint(self):
        class Stub:
            def record(self, time, num_bytes):
                pass

            def estimate(self, now):
                return 42_000.0

        swarm = MiniSwarm(n_leechers=1, estimator=Stub())
        assert swarm.leechers[0].bandwidth_estimate() == 42_000.0

    def test_undecided_estimator_falls_back(self):
        class Undecided:
            def record(self, time, num_bytes):
                pass

            def estimate(self, now):
                return None

        swarm = MiniSwarm(
            n_leechers=1, bandwidth=kB_per_s(256), estimator=Undecided()
        )
        assert swarm.leechers[0].bandwidth_estimate() == pytest.approx(
            kB_per_s(256)
        )


class TestChurnHandling:
    def test_peer_left_drops_availability_and_refetches(self):
        swarm = MiniSwarm(n_leechers=2)
        a, b = swarm.leechers
        swarm.start_all(stagger=0.0)
        swarm.run(until=2.0)
        b.leave()
        swarm.run()
        assert a.player is not None
        assert a.player.buffer.complete
        assert b.name not in a._availability

    def test_leaving_mid_download_counts_cancellations(self):
        swarm = MiniSwarm(n_leechers=1)
        leecher = swarm.leechers[0]
        leecher.start()
        swarm.run(until=1.0)
        had_inflight = len(leecher.inflight)
        leecher.leave()
        assert leecher.metrics.downloads_cancelled == had_inflight
