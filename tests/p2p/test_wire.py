"""Tests for the length-prefixed framing codec."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.p2p.wire import MAX_FRAME_SIZE, FrameDecoder, encode_frame


class TestEncodeFrame:
    def test_prefix_is_big_endian_length(self):
        frame = encode_frame(b"abc")
        assert frame == b"\x00\x00\x00\x03abc"

    def test_empty_payload(self):
        assert encode_frame(b"") == b"\x00\x00\x00\x00"

    def test_oversized_payload_rejected(self):
        with pytest.raises(WireFormatError):
            encode_frame(b"x" * (MAX_FRAME_SIZE + 1))


class TestFrameDecoder:
    def test_whole_frame(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"hello")) == [b"hello"]

    def test_two_frames_in_one_chunk(self):
        decoder = FrameDecoder()
        data = encode_frame(b"a") + encode_frame(b"bb")
        assert decoder.feed(data) == [b"a", b"bb"]

    def test_byte_by_byte(self):
        decoder = FrameDecoder()
        frames = []
        for byte in encode_frame(b"xyz"):
            frames.extend(decoder.feed(bytes([byte])))
        assert frames == [b"xyz"]

    def test_split_across_length_prefix(self):
        decoder = FrameDecoder()
        data = encode_frame(b"payload")
        assert decoder.feed(data[:2]) == []
        assert decoder.feed(data[2:]) == [b"payload"]

    def test_pending_bytes(self):
        decoder = FrameDecoder()
        decoder.feed(b"\x00\x00")
        assert decoder.pending_bytes == 2

    def test_corrupt_length_rejected(self):
        decoder = FrameDecoder()
        with pytest.raises(WireFormatError):
            decoder.feed(b"\xff\xff\xff\xff")

    def test_empty_frame_roundtrip(self):
        decoder = FrameDecoder()
        assert decoder.feed(encode_frame(b"")) == [b""]

    @given(payloads=st.lists(st.binary(max_size=200), max_size=10))
    def test_property_roundtrip(self, payloads):
        decoder = FrameDecoder()
        stream = b"".join(encode_frame(p) for p in payloads)
        assert decoder.feed(stream) == payloads
        assert decoder.pending_bytes == 0

    @given(
        payloads=st.lists(
            st.binary(max_size=100), min_size=1, max_size=5
        ),
        chunk_size=st.integers(min_value=1, max_value=17),
    )
    def test_property_roundtrip_chunked(self, payloads, chunk_size):
        decoder = FrameDecoder()
        stream = b"".join(encode_frame(p) for p in payloads)
        received = []
        for start in range(0, len(stream), chunk_size):
            received.extend(decoder.feed(stream[start : start + chunk_size]))
        assert received == payloads
