"""Tests for the churn model."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.p2p.churn import ChurnConfig, ChurnModel


class TestChurnConfig:
    def test_defaults_disable_churn(self):
        assert ChurnConfig().fraction == 0.0

    def test_invalid_fraction_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(fraction=1.5)

    def test_invalid_lifetime_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(mean_lifetime=0)

    def test_negative_min_lifetime_rejected(self):
        with pytest.raises(ConfigurationError):
            ChurnConfig(min_lifetime=-1)


class TestDepartureSampling:
    def test_zero_fraction_never_departs(self):
        model = ChurnModel(ChurnConfig(fraction=0.0), random.Random(1))
        assert all(model.departure_delay() is None for _ in range(100))

    def test_full_fraction_always_departs(self):
        model = ChurnModel(
            ChurnConfig(fraction=1.0, mean_lifetime=30.0),
            random.Random(1),
        )
        delays = [model.departure_delay() for _ in range(100)]
        assert all(delay is not None for delay in delays)

    def test_min_lifetime_respected(self):
        model = ChurnModel(
            ChurnConfig(
                fraction=1.0, mean_lifetime=1.0, min_lifetime=5.0
            ),
            random.Random(2),
        )
        assert all(
            model.departure_delay() >= 5.0 for _ in range(200)
        )

    def test_mean_roughly_matches(self):
        model = ChurnModel(
            ChurnConfig(
                fraction=1.0, mean_lifetime=60.0, min_lifetime=0.0
            ),
            random.Random(3),
        )
        delays = [model.departure_delay() for _ in range(3000)]
        mean = sum(delays) / len(delays)
        assert mean == pytest.approx(60.0, rel=0.15)

    def test_partial_fraction_mixes(self):
        model = ChurnModel(
            ChurnConfig(fraction=0.5, mean_lifetime=10.0),
            random.Random(4),
        )
        delays = [model.departure_delay() for _ in range(400)]
        stayed = sum(1 for d in delays if d is None)
        assert 100 < stayed < 300

    def test_deterministic_for_seed(self):
        a = ChurnModel(
            ChurnConfig(fraction=0.5), random.Random(7)
        )
        b = ChurnModel(
            ChurnConfig(fraction=0.5), random.Random(7)
        )
        assert [a.departure_delay() for _ in range(50)] == [
            b.departure_delay() for _ in range(50)
        ]
