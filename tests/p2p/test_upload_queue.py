"""Tests for slotted upload queues, urgency, and cancellation."""

import pytest

from repro.p2p.messages import Cancel, Request

from .helpers import MiniSwarm


def queue_of(peer):
    return [(src, index, urgent) for src, index, urgent in peer._upload_queue]


class TestQueuePriority:
    def setup_swarm(self):
        swarm = MiniSwarm(n_leechers=2)
        swarm.seeder.upload_slots = 1
        a, b = swarm.leechers
        # Occupy the single slot so later requests queue.
        swarm.sim.schedule(
            0.0,
            lambda: a.send(
                "seeder", Request(peer_id=a.name, index=0)
            ),
        )
        return swarm, a, b

    def test_urgent_jumps_ahead_of_prefetch(self):
        swarm, a, b = self.setup_swarm()

        def enqueue_more():
            # Urgent requests are never choked; the non-urgent one
            # must target a queue below the choke threshold, so send
            # the urgent ones and inspect ordering among them.
            swarm.seeder._handle_request(a.name, 1, urgent=False)
            swarm.seeder._handle_request(b.name, 2, urgent=True)

        swarm.sim.schedule(0.5, enqueue_more)
        swarm.run(until=0.6)
        queue = queue_of(swarm.seeder)
        assert (b.name, 2, True) in queue
        assert queue.index((b.name, 2, True)) < queue.index(
            (a.name, 1, False)
        )

    def test_duplicate_request_upgrades_priority(self):
        swarm, a, b = self.setup_swarm()

        def enqueue():
            swarm.seeder._handle_request(a.name, 1, urgent=False)
            swarm.seeder._handle_request(b.name, 2, urgent=True)
            # a re-requests 1 urgently: it should move ahead of
            # nothing new but flip its urgency bit.
            swarm.seeder._handle_request(a.name, 1, urgent=True)

        swarm.sim.schedule(0.5, enqueue)
        swarm.run(until=0.6)
        queue = queue_of(swarm.seeder)
        assert (a.name, 1, True) in queue
        assert (a.name, 1, False) not in queue
        assert len([q for q in queue if q[0] == a.name and q[1] == 1]) == 1

    def test_duplicate_request_same_priority_ignored(self):
        swarm, a, _ = self.setup_swarm()

        def enqueue():
            swarm.seeder._handle_request(a.name, 1, urgent=False)
            swarm.seeder._handle_request(a.name, 1, urgent=False)

        swarm.sim.schedule(0.5, enqueue)
        swarm.run(until=0.6)
        queue = queue_of(swarm.seeder)
        assert len([q for q in queue if q[1] == 1]) == 1

    def test_cancel_removes_queued_entry(self):
        swarm, a, _ = self.setup_swarm()

        def enqueue_and_cancel():
            swarm.seeder._handle_request(a.name, 1, urgent=True)
            swarm.seeder._handle_cancel(a.name, 1)

        swarm.sim.schedule(0.5, enqueue_and_cancel)
        swarm.run(until=0.6)
        assert all(q[1] != 1 for q in queue_of(swarm.seeder))

    def test_cancel_aborts_active_upload(self):
        swarm = MiniSwarm(n_leechers=1)
        leecher = swarm.leechers[0]
        leecher.start()
        swarm.run(until=1.0)
        active_before = swarm.seeder.active_upload_count
        assert active_before >= 1
        (index, _), *_ = list(leecher.inflight.items())
        swarm.seeder._handle_cancel(leecher.name, index)
        assert swarm.seeder.active_upload_count == active_before - 1


class TestStallEscalation:
    def test_stall_sends_urgent_upgrade(self):
        swarm = MiniSwarm(n_leechers=1)
        swarm.seeder.upload_slots = 1
        leecher = swarm.leechers[0]
        sent = []
        original_send = leecher.send

        def spy(dst, message):
            if isinstance(message, Request) and message.urgent:
                sent.append(message.index)
            original_send(dst, message)

        leecher.send = spy
        leecher.start()
        swarm.run()
        assert leecher.player.buffer.complete
        # At least the initial (T=0) request went out urgent.
        assert sent
