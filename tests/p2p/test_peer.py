"""Tests for peer plumbing: control plane, uploads, choking."""

import pytest

from repro.errors import PeerError
from repro.p2p.messages import Handshake, Request
from repro.p2p.peer import piece_wire_overhead

from .helpers import MiniSwarm


class TestControlPlane:
    def test_delay_uses_topology_latency(self):
        swarm = MiniSwarm()
        assert swarm.control.delay("peer-1", "peer-2") == pytest.approx(
            0.025
        )

    def test_extra_latency_hook(self):
        swarm = MiniSwarm()
        swarm.control._extra_latency = (
            lambda s, d: 0.5 if "seeder" in (s, d) else 0.0
        )
        assert swarm.control.delay("peer-1", "seeder") == pytest.approx(
            0.525
        )

    def test_duplicate_registration_rejected(self):
        swarm = MiniSwarm()
        with pytest.raises(PeerError):
            swarm.control.register(swarm.seeder)

    def test_message_counters(self):
        swarm = MiniSwarm(n_leechers=1)
        before = swarm.control.messages_sent
        swarm.leechers[0].start()
        assert swarm.control.messages_sent == before + 1
        assert swarm.control.control_bytes > 0

    def test_message_to_departed_peer_dropped(self):
        swarm = MiniSwarm(n_leechers=2)
        a, b = swarm.leechers
        b.leave()
        a.send(b.name, Handshake(peer_id=a.name, info_hash="x"))
        swarm.run()  # delivery fires but is dropped; no exception


class TestPieceWireOverhead:
    def test_positive_and_small(self):
        overhead = piece_wire_overhead("peer-1", 3, 512_000)
        assert 0 < overhead < 100

    def test_grows_with_peer_id(self):
        short = piece_wire_overhead("p", 0, 1)
        long = piece_wire_overhead("p" * 30, 0, 1)
        assert long > short


class TestUploads:
    def test_request_for_missing_segment_rejected(self):
        swarm = MiniSwarm(n_leechers=2)
        a, b = swarm.leechers
        # b holds nothing; a asks anyway.
        swarm.sim.schedule(
            0.0, lambda: a.send(b.name, Request(peer_id=a.name, index=0))
        )
        swarm.run(until=1.0)
        assert b.active_upload_count == 0

    def test_upload_serves_segment(self):
        swarm = MiniSwarm(n_leechers=1)
        leecher = swarm.leechers[0]
        leecher.start()
        swarm.run()
        assert leecher.owned == set(range(len(swarm.splice)))
        assert swarm.seeder.bytes_uploaded > 0

    def test_upload_status_reports_active(self):
        swarm = MiniSwarm(n_leechers=1)
        leecher = swarm.leechers[0]
        leecher.start()
        swarm.run(until=1.0)  # mid-download
        statuses = {
            swarm.seeder.upload_status(leecher.name, index)
            for index in leecher.inflight
        }
        assert "active" in statuses

    def test_upload_status_none_for_unknown(self):
        swarm = MiniSwarm(n_leechers=1)
        assert swarm.seeder.upload_status("peer-1", 0) is None


class TestSlotsAndChoking:
    def test_slots_limit_concurrent_uploads(self):
        swarm = MiniSwarm(n_leechers=1)
        swarm.seeder.upload_slots = 1
        leecher = swarm.leechers[0]
        leecher.start()

        def check():
            assert swarm.seeder.active_upload_count <= 1

        for t in (0.5, 1.0, 2.0, 4.0):
            swarm.sim.schedule(t, check)
        swarm.run()
        assert leecher.player is not None
        assert leecher.player.buffer.complete

    def test_busy_choke_rejects_non_urgent(self):
        swarm = MiniSwarm(n_leechers=2)
        swarm.seeder.upload_slots = 1
        a, b = swarm.leechers
        swarm.start_all(stagger=0.0)
        swarm.run(until=0.7)
        # With one slot and a queue threshold of 1, at least one
        # non-urgent request got choked and backed off.
        backoffs = len(a._source_backoff) + len(b._source_backoff)
        inflight = len(a.inflight) + len(b.inflight)
        assert backoffs >= 0  # smoke: mechanism does not crash
        assert inflight >= 1

    def test_unbounded_slots_serve_all(self):
        swarm = MiniSwarm(n_leechers=3)
        swarm.start_all(stagger=0.0)
        swarm.run()
        for leecher in swarm.leechers:
            assert leecher.player is not None
            assert leecher.player.buffer.complete


class TestLeave:
    def test_leave_cancels_uploads_and_unregisters(self):
        swarm = MiniSwarm(n_leechers=1)
        leecher = swarm.leechers[0]
        leecher.start()
        swarm.run(until=1.0)
        swarm.seeder.leave()
        assert swarm.seeder.active_upload_count == 0
        assert swarm.control.peer("seeder") is None

    def test_leave_is_idempotent(self):
        swarm = MiniSwarm(n_leechers=1)
        swarm.seeder.leave()
        swarm.seeder.leave()
        assert not swarm.seeder.alive
