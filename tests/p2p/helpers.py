"""Shared builders for P2P-layer tests."""

from __future__ import annotations

import random

from repro.core.policy import AdaptivePoolPolicy, DownloadPolicy
from repro.core.splicer import DurationSplicer
from repro.net.engine import Simulator
from repro.net.flownet import FlowNetwork
from repro.net.topology import StarTopology
from repro.p2p.leecher import Leecher, LeecherConfig
from repro.p2p.peer import ControlPlane
from repro.p2p.seeder import Seeder
from repro.p2p.tracker import Tracker
from repro.units import kB_per_s
from repro.video.encoder import EncoderConfig, SyntheticEncoder
from repro.video.scene import generate_scene_plan


def make_splice(duration=12.0, segment_duration=2.0, seed=3):
    rng = random.Random(seed)
    plan = generate_scene_plan(duration, rng)
    stream = SyntheticEncoder(
        EncoderConfig(bitrate=800_000.0)
    ).encode(plan, rng)
    return DurationSplicer(segment_duration).splice(stream)


class MiniSwarm:
    """A hand-built swarm for protocol-level tests."""

    def __init__(
        self,
        splice=None,
        n_leechers: int = 2,
        bandwidth: float = kB_per_s(512),
        policy: DownloadPolicy | None = None,
        **leecher_overrides,
    ) -> None:
        self.splice = splice if splice is not None else make_splice()
        self.sim = Simulator()
        self.network = FlowNetwork(self.sim)
        self.topology = StarTopology()
        self.control = ControlPlane(self.sim, self.topology)
        self.tracker = Tracker()
        seeder_node = self.topology.add_node(
            "seeder", bandwidth, latency_to_hub=0.0125
        )
        self.seeder = Seeder(
            "seeder",
            seeder_node,
            self.sim,
            self.network,
            self.topology,
            self.control,
            self.splice,
            self.tracker,
        )
        self.leechers: list[Leecher] = []
        for i in range(n_leechers):
            name = f"peer-{i + 1}"
            node = self.topology.add_node(
                name, bandwidth, latency_to_hub=0.0125
            )
            config = LeecherConfig(
                policy=policy if policy is not None else AdaptivePoolPolicy(),
                bandwidth_hint=bandwidth,
                seed=i,
                **leecher_overrides,
            )
            self.leechers.append(
                Leecher(
                    name,
                    node,
                    self.sim,
                    self.network,
                    self.topology,
                    self.control,
                    "seeder",
                    config,
                )
            )

    def start_all(self, stagger: float = 1.0) -> None:
        for i, leecher in enumerate(self.leechers):
            self.sim.schedule(i * stagger, leecher.start)

    def run(self, until: float = 600.0) -> None:
        self.sim.run(until=until)
