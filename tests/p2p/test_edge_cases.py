"""Edge cases in the P2P layer: degenerate swarms and timing."""

import pytest

from repro.core.splicer import DurationSplicer
from repro.p2p.swarm import Swarm, SwarmConfig
from repro.units import kB_per_s

from .helpers import MiniSwarm, make_splice


class TestDegenerateSwarms:
    def test_single_segment_video(self, tiny_video):
        splice = DurationSplicer(60.0).splice(tiny_video)
        assert len(splice) == 1
        config = SwarmConfig(
            bandwidth=kB_per_s(512),
            seeder_bandwidth=kB_per_s(1024),
            n_leechers=2,
            seed=1,
            join_stagger=0.5,
            max_time=300.0,
        )
        result = Swarm(splice, config).run()
        assert result.all_finished
        for metrics in result.metrics.values():
            assert metrics.stall_count == 0  # nothing after segment 0

    def test_unfinishable_session_terminates(self, tiny_video):
        # Bandwidth so low the video cannot complete within max_time;
        # the simulation must still end cleanly at the cap.
        splice = DurationSplicer(2.0).splice(tiny_video)
        config = SwarmConfig(
            bandwidth=2_000.0,  # 2 kB/s for a ~1 MB video
            n_leechers=1,
            seed=1,
            max_time=60.0,
        )
        result = Swarm(splice, config).run()
        assert result.end_time <= 60.0
        assert not result.all_finished

    def test_leecher_leaving_before_manifest(self):
        swarm = MiniSwarm(n_leechers=2)
        early_leaver = swarm.leechers[0]
        survivor = swarm.leechers[1]
        swarm.sim.schedule(0.0, early_leaver.start)
        swarm.sim.schedule(0.01, early_leaver.leave)  # before reply
        swarm.sim.schedule(1.0, survivor.start)
        swarm.run()
        assert early_leaver.manifest is None
        assert survivor.player is not None
        assert survivor.player.buffer.complete

    def test_all_leechers_leave_immediately(self):
        swarm = MiniSwarm(n_leechers=2)
        for leecher in swarm.leechers:
            swarm.sim.schedule(0.0, leecher.start)
            swarm.sim.schedule(0.5, leecher.leave)
        swarm.run()  # terminates without error
        assert all(not l.alive for l in swarm.leechers)

    def test_zero_stagger_flash_crowd_completes(self):
        swarm = MiniSwarm(n_leechers=4)
        swarm.start_all(stagger=0.0)
        swarm.run()
        for leecher in swarm.leechers:
            assert leecher.player is not None
            assert leecher.player.buffer.complete


class TestMetricsConsistency:
    def test_stall_durations_non_negative_and_ordered(self):
        splice = make_splice(duration=16.0, segment_duration=2.0)
        swarm = MiniSwarm(splice=splice, n_leechers=3, bandwidth=90_000.0)
        swarm.start_all(stagger=1.0)
        swarm.run()
        for leecher in swarm.leechers:
            stalls = leecher.metrics.stalls
            for stall in stalls:
                assert stall.duration >= 0
            for earlier, later in zip(stalls, stalls[1:]):
                assert later.start >= earlier.end

    def test_playback_never_ends_before_it_starts(self):
        swarm = MiniSwarm(n_leechers=2)
        swarm.start_all()
        swarm.run()
        for leecher in swarm.leechers:
            metrics = leecher.metrics
            if metrics.playback_end is not None:
                assert metrics.playback_start is not None
                assert metrics.playback_end >= metrics.playback_start

    def test_downloaded_bytes_match_splice_exactly(self):
        swarm = MiniSwarm(n_leechers=1)
        swarm.leechers[0].start()
        swarm.run()
        assert swarm.leechers[0].metrics.bytes_downloaded == (
            swarm.splice.total_size
        )

    def test_uploads_equal_downloads_plus_wire_overhead(self):
        swarm = MiniSwarm(n_leechers=2)
        swarm.start_all()
        swarm.run()
        downloaded = sum(
            l.metrics.bytes_downloaded for l in swarm.leechers
        )
        uploaded = swarm.seeder.bytes_uploaded + sum(
            l.bytes_uploaded for l in swarm.leechers
        )
        # Uploads count wire bytes (piece headers) on top of payload.
        assert uploaded >= downloaded
        assert uploaded < downloaded * 1.01
