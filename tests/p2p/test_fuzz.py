"""Fuzzing the wire layer: malformed input must fail loudly and typed.

A peer receiving garbage must raise :class:`WireFormatError` (never
``IndexError``/``struct.error``/silent misparse) — the property a
network-facing decoder must hold.
"""

import pytest
from hypothesis import example, given
from hypothesis import strategies as st

from repro.errors import WireFormatError
from repro.p2p.messages import (
    Manifest,
    Request,
    decode_message,
    encode_message,
)
from repro.p2p.wire import FrameDecoder


class TestDecodeMessageFuzz:
    @given(data=st.binary(max_size=400))
    @example(data=b"")
    @example(data=b"\x03")  # Manifest id with no body
    def test_random_bytes_never_crash_untyped(self, data):
        try:
            decode_message(data)
        except WireFormatError:
            pass  # the one allowed failure mode

    @given(data=st.binary(min_size=1, max_size=200))
    def test_truncations_of_valid_messages(self, data):
        message = Manifest(
            info_hash="deadbeef",
            segment_sizes=(100, 200, 300),
            segment_durations=(1.0, 2.0, 3.0),
            peers=("a", "b"),
        )
        encoded = encode_message(message)
        for cut in range(1, len(encoded)):
            try:
                decoded = decode_message(encoded[:cut])
            except WireFormatError:
                continue
            # A prefix that still parses must not masquerade as the
            # original message.
            assert decoded != message

    @given(flip_at=st.integers(min_value=1, max_value=10))
    def test_bitflips_in_body_fail_or_differ(self, flip_at):
        message = Request(peer_id="peer-1", index=42)
        encoded = bytearray(encode_message(message))
        if flip_at >= len(encoded):
            return
        encoded[flip_at] ^= 0xFF
        try:
            decoded = decode_message(bytes(encoded))
        except WireFormatError:
            return
        assert decoded != message


class TestFrameDecoderFuzz:
    @given(data=st.binary(max_size=300))
    def test_arbitrary_chunks_never_crash_untyped(self, data):
        decoder = FrameDecoder()
        try:
            decoder.feed(data)
        except WireFormatError:
            pass

    @given(
        chunks=st.lists(st.binary(max_size=50), max_size=10),
    )
    def test_incremental_feeding_equals_bulk(self, chunks):
        bulk_decoder = FrameDecoder()
        chunked_decoder = FrameDecoder()
        stream = b"".join(chunks)
        try:
            bulk = bulk_decoder.feed(stream)
        except WireFormatError:
            return
        incremental = []
        try:
            for chunk in chunks:
                incremental.extend(chunked_decoder.feed(chunk))
        except WireFormatError:
            return
        assert incremental == bulk
