"""Vectorized swarm backends: validation, parity, determinism.

The cohort and fluid tiers (:mod:`repro.p2p.scale`) trade per-peer
event fidelity for population scale.  These tests pin down the
contract documented in ``docs/SCALING.md``:

* configuration errors surface at construction, not mid-run;
* the cohort tier reproduces the exact engine's ``StreamingMetrics``
  within the documented tolerances at 100 peers (supply-adequate
  regime) and matches its stall *counts* in the starved regime;
* results are bit-identical at any worker count and across repeated
  runs (no hidden global RNG state);
* the backend choice is part of a cell's content digest.
"""

from __future__ import annotations

import dataclasses

import pytest

from repro.core.splicer import DurationSplicer
from repro.errors import ConfigurationError, ExperimentError, SwarmError
from repro.experiments.config import ExperimentConfig
from repro.obs.context import Observability
from repro.p2p import (
    FIDELITY_TIERS,
    CohortSwarm,
    FluidSwarm,
    Swarm,
    SwarmConfig,
    build_swarm,
)
from repro.p2p.churn import ChurnConfig
from repro.p2p.selection import RarestFirstSelector
from repro.parallel import SweepExecutor
from repro.parallel.digest import content_digest
from repro.parallel.spec import SplicerSpec, cell_for
from repro.units import kB_per_s

from ..conftest import requires_numpy


def scale_config(n=100, fidelity="cohort", bandwidth=300, **overrides):
    defaults = dict(
        bandwidth=kB_per_s(bandwidth),
        seeder_bandwidth=kB_per_s(2400),
        n_leechers=n,
        seed=7,
        join_stagger=1.0,
        max_time=1800.0,
        fidelity=fidelity,
    )
    defaults.update(overrides)
    return SwarmConfig(**defaults)


@pytest.fixture(scope="module")
def splice(short_video):
    return DurationSplicer(4.0).splice(short_video)


class TestConfiguration:
    def test_fidelity_tiers_are_the_documented_three(self):
        assert FIDELITY_TIERS == ("exact", "cohort", "fluid")

    def test_unknown_fidelity_is_rejected(self):
        with pytest.raises(ConfigurationError, match="fidelity"):
            scale_config(fidelity="approximate")

    def test_non_positive_max_cohorts_is_rejected(self):
        with pytest.raises(ConfigurationError, match="max_cohorts"):
            scale_config(max_cohorts=0)

    def test_non_positive_fluid_dt_is_rejected(self):
        with pytest.raises(ConfigurationError, match="fluid_dt"):
            scale_config(fidelity="fluid", fluid_dt=0.0)

    def test_experiment_config_rejects_unknown_fidelity(self):
        with pytest.raises(ExperimentError, match="fidelity"):
            ExperimentConfig(fidelity="turbo")

    def test_cell_spec_rejects_unknown_fidelity(self, tiny_video):
        with pytest.raises(ExperimentError, match="fidelity"):
            cell_for(
                SplicerSpec("gop"),
                300.0,
                ExperimentConfig(),
                video=tiny_video,
                fidelity="turbo",
            )


@requires_numpy
class TestDispatch:
    def test_exact_builds_the_event_engine(self, splice):
        swarm = build_swarm(splice, scale_config(fidelity="exact"))
        assert isinstance(swarm, Swarm)

    def test_cohort_and_fluid_build_vector_backends(self, splice):
        cohort = build_swarm(splice, scale_config(fidelity="cohort"))
        fluid = build_swarm(splice, scale_config(fidelity="fluid"))
        assert isinstance(cohort, CohortSwarm)
        assert isinstance(fluid, FluidSwarm)

    def test_vector_tiers_reject_estimator_factories(self, splice):
        from repro.bwest import EwmaThroughputEstimator

        config = scale_config(
            estimator_factory=EwmaThroughputEstimator
        )
        with pytest.raises(ConfigurationError, match="estimator"):
            build_swarm(splice, config)

    def test_vector_tiers_reject_non_sequential_selection(self, splice):
        config = scale_config(selector=RarestFirstSelector())
        with pytest.raises(ConfigurationError, match="[Ss]elect"):
            build_swarm(splice, config)

    def test_exact_tier_keeps_estimators_and_selectors(self, splice):
        config = scale_config(
            n=3, fidelity="exact", selector=RarestFirstSelector()
        )
        assert isinstance(build_swarm(splice, config), Swarm)

    def test_a_swarm_runs_once(self, splice):
        swarm = build_swarm(splice, scale_config(n=10))
        swarm.run()
        with pytest.raises(SwarmError, match="only run once"):
            swarm.run()

    def test_set_peer_bandwidth_validates(self, splice):
        swarm = build_swarm(splice, scale_config(n=10))
        with pytest.raises(ConfigurationError, match="bandwidth"):
            swarm.set_peer_bandwidth(0.0)


@requires_numpy
class TestCohortParity:
    """Cohort vs. exact at 100 peers (docs/SCALING.md tolerances)."""

    @pytest.fixture(scope="class")
    def pair(self, short_video):
        splice = DurationSplicer(4.0).splice(short_video)
        exact = build_swarm(splice, scale_config(fidelity="exact")).run()
        cohort = build_swarm(
            splice, scale_config(fidelity="cohort")
        ).run()
        return exact, cohort

    def test_every_peer_finishes_in_both(self, pair):
        exact, cohort = pair
        assert len(exact.finished_metrics()) == 100
        assert len(cohort.finished_metrics()) == 100
        assert set(cohort.metrics) == set(exact.metrics)

    def test_stall_counts_within_tolerance(self, pair):
        exact, cohort = pair
        delta = abs(
            exact.mean_stall_count() - cohort.mean_stall_count()
        )
        assert delta <= 1.5

    def test_startup_time_within_tolerance(self, pair):
        exact, cohort = pair
        delta = abs(
            exact.mean_startup_time() - cohort.mean_startup_time()
        )
        assert delta <= 1.0

    def test_total_download_volume_matches(self, pair):
        exact, cohort = pair
        total = lambda r: r.seeder_bytes_uploaded + r.peer_bytes_uploaded
        assert total(cohort) == pytest.approx(total(exact), rel=0.05)

    def test_end_time_is_the_configured_cap(self, pair):
        exact, cohort = pair
        assert cohort.end_time == exact.end_time == 1800.0

    def test_cohort_metrics_are_population_invariant(self, splice):
        """Parity validated at 100 peers transfers to 500.

        The peers are statistically identical, so headline metrics are
        flat in N in both engines (exact: 1.020/1.007/1.004 stalls and
        byte-identical startups at 100/300/500 peers; the 500-peer
        exact baseline is too slow for the suite, so the flatness is
        pinned on the cohort side).
        """
        at_100 = build_swarm(splice, scale_config(n=100)).run()
        at_500 = build_swarm(splice, scale_config(n=500)).run()
        assert len(at_500.finished_metrics()) == 500
        assert at_500.mean_startup_time() == pytest.approx(
            at_100.mean_startup_time(), abs=0.2
        )
        delta = abs(
            at_500.mean_stall_count() - at_100.mean_stall_count()
        )
        assert delta <= 0.5

    def test_starved_regime_reproduces_stall_counts(self, splice):
        """At 100 kB/s (< bitrate) both engines stall every period."""
        exact = build_swarm(
            splice, scale_config(fidelity="exact", bandwidth=100)
        ).run()
        cohort = build_swarm(
            splice, scale_config(fidelity="cohort", bandwidth=100)
        ).run()
        assert cohort.mean_stall_count() == pytest.approx(
            exact.mean_stall_count(), abs=0.5
        )
        assert cohort.mean_stall_duration() > 0.0


@requires_numpy
class TestCohortMechanics:
    def test_repeated_runs_are_bit_identical(self, splice):
        def once():
            result = build_swarm(splice, scale_config(n=50)).run()
            return (
                result.mean_stall_count(),
                result.mean_stall_duration(),
                result.mean_startup_time(),
                result.seeder_bytes_uploaded,
                result.peer_bytes_uploaded,
                result.control_messages,
            )

        assert once() == once()

    def test_churned_peers_are_named_and_unfinished(self, splice):
        config = scale_config(
            n=60,
            churn=ChurnConfig(
                mean_lifetime=10.0, fraction=0.6, min_lifetime=2.0
            ),
        )
        result = build_swarm(splice, config).run()
        assert result.departed
        assert set(result.departed) <= set(result.metrics)
        for name in result.departed:
            assert not result.metrics[name].finished

    def test_observability_publishes_population_counters(self, splice):
        obs = Observability.metrics_only()
        build_swarm(splice, scale_config(n=40), obs=obs).run()
        counters = {
            c.name: c.value for c in obs.registry.counters().values()
        }
        assert counters["swarm.joins"] == 40
        assert counters["player.finished"] == 40
        assert counters["p2p.bytes_downloaded"] > 0

    def test_lifecycle_trace_has_one_representative_per_cohort(
        self, splice
    ):
        obs = Observability.tracing()
        config = scale_config(n=40, max_cohorts=8)
        build_swarm(splice, config, obs=obs).run()
        events = [
            e
            for e in obs.events()
            if not type(e).__name__.startswith("Simulation")
        ]
        joined = [e for e in events if type(e).__name__ == "PeerJoined"]
        assert len(joined) == 8
        times = [e.time for e in events]
        assert times == sorted(times)


@requires_numpy
class TestFluidTier:
    def test_large_population_session_completes(self, splice):
        config = scale_config(
            n=20_000, fidelity="fluid", join_stagger=0.01
        )
        result = build_swarm(splice, config).run()
        assert len(result.metrics) == 20_000
        assert len(result.finished_metrics()) == 20_000
        assert result.end_time == 1800.0
        assert result.mean_startup_time() > 0.0

    def test_fluid_curves_flatten_as_population_grows(self, splice):
        """Stall-rate/startup curves converge (flatten) in N.

        The paper's asymptotic claim — and the fluid tier's raison
        d'être — is that per-peer playback quality stabilizes as the
        swarm grows; the mean-field curves must be N-invariant.
        """
        small = build_swarm(
            splice,
            scale_config(n=2_000, fidelity="fluid", join_stagger=0.1),
        ).run()
        big = build_swarm(
            splice,
            scale_config(
                n=20_000, fidelity="fluid", join_stagger=0.01
            ),
        ).run()
        assert big.mean_stall_count() == pytest.approx(
            small.mean_stall_count(), abs=1.0
        )
        assert big.mean_startup_time() == pytest.approx(
            small.mean_startup_time(), abs=1.0
        )

    def test_fluid_matches_cohort_startup_envelope(self, splice):
        cohort = build_swarm(
            splice, scale_config(fidelity="cohort")
        ).run()
        fluid = build_swarm(splice, scale_config(fidelity="fluid")).run()
        delta = abs(
            fluid.mean_startup_time() - cohort.mean_startup_time()
        )
        assert delta <= 3.0


@requires_numpy
class TestSweepIntegration:
    @pytest.fixture(scope="class")
    def cohort_cell(self, tiny_video):
        config = ExperimentConfig(
            n_leechers=30,
            seeds=(7, 17),
            join_stagger=1.0,
            max_time=900.0,
        )
        return cell_for(
            SplicerSpec("duration", 2.0),
            300.0,
            config,
            video=tiny_video,
            fidelity="cohort",
            label="scale/cohort @ 300",
        )

    def test_worker_count_does_not_change_the_cell(self, cohort_cell):
        serial = SweepExecutor(jobs=1).run_cells([cohort_cell])
        parallel = SweepExecutor(jobs=4).run_cells([cohort_cell])
        assert serial == parallel

    def test_fidelity_enters_the_content_digest(self, cohort_cell):
        exact = dataclasses.replace(cohort_cell, fidelity=None)
        fluid = dataclasses.replace(cohort_cell, fidelity="fluid")
        digests = {
            content_digest(cohort_cell),
            content_digest(exact),
            content_digest(fluid),
        }
        assert len(digests) == 3
        assert content_digest(cohort_cell) == content_digest(
            dataclasses.replace(cohort_cell)
        )
