"""Tests for the seeder."""

import pytest

from repro.p2p.messages import ManifestRequest
from repro.p2p.seeder import info_hash_for

from .helpers import MiniSwarm, make_splice


class TestInfoHash:
    def test_stable(self):
        splice = make_splice()
        assert info_hash_for(splice) == info_hash_for(splice)

    def test_depends_on_technique(self):
        a = make_splice(segment_duration=2.0)
        b = make_splice(segment_duration=4.0)
        assert info_hash_for(a) != info_hash_for(b)

    def test_is_hex_sha1(self):
        digest = info_hash_for(make_splice())
        assert len(digest) == 40
        int(digest, 16)  # parses as hex


class TestManifestService:
    def test_owns_everything(self):
        swarm = MiniSwarm()
        assert swarm.seeder.owned == set(range(len(swarm.splice)))

    def test_manifest_layout_matches_splice(self):
        swarm = MiniSwarm()
        manifest = swarm.seeder.manifest_for("anyone")
        assert manifest.segment_sizes == tuple(
            swarm.splice.segment_sizes()
        )
        assert manifest.segment_count == len(swarm.splice)

    def test_manifest_excludes_requester(self):
        swarm = MiniSwarm()
        swarm.tracker.register("peer-1")
        manifest = swarm.seeder.manifest_for("peer-1")
        assert "peer-1" not in manifest.peers

    def test_request_registers_peer(self):
        swarm = MiniSwarm(n_leechers=1)
        swarm.leechers[0].start()
        swarm.run(until=1.0)
        assert "peer-1" in swarm.tracker

    def test_repeat_manifest_request_tolerated(self):
        swarm = MiniSwarm(n_leechers=1)
        leecher = swarm.leechers[0]
        leecher.start()
        swarm.run(until=0.2)
        leecher.send(
            "seeder", ManifestRequest(peer_id=leecher.name)
        )
        swarm.run(until=2.0)  # no duplicate-registration explosion
        assert leecher.manifest is not None

    def test_peer_departure_unregisters(self):
        swarm = MiniSwarm(n_leechers=1)
        leecher = swarm.leechers[0]
        leecher.start()
        swarm.run(until=1.0)
        leecher.leave()
        swarm.run(until=2.0)
        assert "peer-1" not in swarm.tracker


class TestLaterJoinersSeeEarlierPeers:
    def test_manifest_contains_swarm(self):
        swarm = MiniSwarm(n_leechers=3)
        swarm.start_all(stagger=1.0)
        swarm.run(until=3.0)
        last = swarm.leechers[-1]
        assert last.manifest is not None
        assert set(last.manifest.peers) >= {"peer-1", "peer-2"}
