"""Tests for piece-selection strategies."""

import random

import pytest

from repro.errors import ConfigurationError
from repro.p2p.selection import (
    RarestFirstSelector,
    SequentialSelector,
    WindowedRarestSelector,
)


def availability(**holders):
    return {name: set(indices) for name, indices in holders.items()}


class TestSequentialSelector:
    def test_orders_ascending(self):
        selector = SequentialSelector()
        result = selector.order(
            [5, 1, 3], next_needed=1, availability={}, rng=random.Random(0)
        )
        assert result == [1, 3, 5]

    def test_name(self):
        assert SequentialSelector().name == "sequential"


class TestRarestFirstSelector:
    def test_rarest_comes_first(self):
        selector = RarestFirstSelector()
        avail = availability(
            a=[0, 1, 2], b=[0, 1], c=[0]
        )  # 0 common, 2 rare
        result = selector.order(
            [0, 1, 2], next_needed=0, availability=avail,
            rng=random.Random(0),
        )
        assert result[0] == 2
        assert result[-1] == 0

    def test_ties_broken_randomly_but_deterministically(self):
        selector = RarestFirstSelector()
        avail = availability(a=[0, 1, 2, 3])
        first = selector.order(
            [0, 1, 2, 3], None, avail, random.Random(42)
        )
        second = selector.order(
            [0, 1, 2, 3], None, avail, random.Random(42)
        )
        assert first == second

    def test_name(self):
        assert RarestFirstSelector().name == "rarest-first"


class TestWindowedRarestSelector:
    def test_head_is_sequential(self):
        selector = WindowedRarestSelector(urgent_window=2, lookahead=4)
        avail = availability(a=[4], b=[4], c=[4])  # 4 is common
        result = selector.order(
            [0, 1, 2, 3, 4, 5],
            next_needed=0,
            availability=avail,
            rng=random.Random(0),
        )
        assert result[:2] == [0, 1]

    def test_window_is_rarest_first(self):
        selector = WindowedRarestSelector(urgent_window=1, lookahead=3)
        # next_needed=0; window covers 1..3; make 3 rare, 1 common.
        avail = availability(a=[1, 2], b=[1], c=[])
        result = selector.order(
            [0, 1, 2, 3],
            next_needed=0,
            availability=avail,
            rng=random.Random(0),
        )
        assert result[0] == 0
        assert result[1] == 3  # zero holders -> rarest

    def test_tail_keeps_order(self):
        selector = WindowedRarestSelector(urgent_window=1, lookahead=2)
        result = selector.order(
            list(range(8)),
            next_needed=0,
            availability={},
            rng=random.Random(0),
        )
        assert result[-5:] == [3, 4, 5, 6, 7]

    def test_handles_finished_player(self):
        selector = WindowedRarestSelector()
        result = selector.order(
            [2, 7], next_needed=None, availability={},
            rng=random.Random(0),
        )
        assert set(result) == {2, 7}

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            WindowedRarestSelector(urgent_window=0)
        with pytest.raises(ConfigurationError):
            WindowedRarestSelector(lookahead=-1)

    def test_name_encodes_windows(self):
        assert (
            WindowedRarestSelector(2, 8).name == "windowed-rarest-2+8"
        )


class TestSelectorsPreserveContents:
    @pytest.mark.parametrize(
        "selector",
        [
            SequentialSelector(),
            RarestFirstSelector(),
            WindowedRarestSelector(),
        ],
    )
    def test_permutation_only(self, selector):
        missing = [9, 4, 0, 7, 2]
        result = selector.order(
            missing,
            next_needed=0,
            availability=availability(a=[0, 2], b=[4]),
            rng=random.Random(1),
        )
        assert sorted(result) == sorted(missing)
