"""Tests for bandwidth estimators."""

import pytest

from repro.bwest import (
    EwmaThroughputEstimator,
    MathisEstimator,
    WindowedThroughputEstimator,
)
from repro.errors import ConfigurationError


class TestWindowedThroughputEstimator:
    def test_undecided_before_min_samples(self):
        estimator = WindowedThroughputEstimator(min_samples=2)
        estimator.record(0.0, 1000)
        assert estimator.estimate(1.0) is None

    def test_steady_arrivals(self):
        estimator = WindowedThroughputEstimator(window=10.0)
        for t in range(10):
            estimator.record(float(t), 1000)
        assert estimator.estimate(10.0) == pytest.approx(1000.0, rel=0.2)

    def test_old_arrivals_expire(self):
        estimator = WindowedThroughputEstimator(window=5.0)
        estimator.record(0.0, 1_000_000)
        estimator.record(6.0, 1000)
        estimator.record(9.0, 1000)
        # At t=10 the million-byte burst is outside the window.
        estimate = estimator.estimate(10.0)
        assert estimate is not None
        assert estimate < 10_000

    def test_short_history_uses_elapsed_time(self):
        estimator = WindowedThroughputEstimator(window=10.0)
        estimator.record(0.0, 1000)
        estimator.record(1.0, 1000)
        assert estimator.estimate(1.0) == pytest.approx(2000.0)

    def test_invalid_window_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowedThroughputEstimator(window=0)

    def test_negative_bytes_rejected(self):
        with pytest.raises(ConfigurationError):
            WindowedThroughputEstimator().record(0.0, -1)


class TestEwmaThroughputEstimator:
    def test_undecided_before_two_arrivals(self):
        estimator = EwmaThroughputEstimator()
        estimator.record(0.0, 1000)
        assert estimator.estimate(0.0) is None

    def test_constant_rate_converges(self):
        estimator = EwmaThroughputEstimator(alpha=0.5)
        for t in range(20):
            estimator.record(float(t), 500)
        assert estimator.estimate(20.0) == pytest.approx(500.0, rel=0.01)

    def test_reacts_to_change(self):
        estimator = EwmaThroughputEstimator(alpha=0.5)
        for t in range(5):
            estimator.record(float(t), 100)
        for t in range(5, 10):
            estimator.record(float(t), 1000)
        estimate = estimator.estimate(10.0)
        assert estimate > 800

    def test_invalid_alpha_rejected(self):
        with pytest.raises(ConfigurationError):
            EwmaThroughputEstimator(alpha=0.0)
        with pytest.raises(ConfigurationError):
            EwmaThroughputEstimator(alpha=1.5)

    def test_simultaneous_arrivals_ignored(self):
        estimator = EwmaThroughputEstimator()
        estimator.record(1.0, 100)
        estimator.record(1.0, 100)
        assert estimator.estimate(1.0) is None


class TestMathisEstimator:
    def test_formula(self):
        estimator = MathisEstimator(rtt=0.05, loss_rate=0.05)
        assert estimator.ceiling == pytest.approx(159_934, rel=0.01)

    def test_estimate_equals_ceiling(self):
        estimator = MathisEstimator(rtt=0.1, loss_rate=0.01)
        assert estimator.estimate(123.0) == estimator.ceiling

    def test_record_is_ignored(self):
        estimator = MathisEstimator(rtt=0.1, loss_rate=0.01)
        before = estimator.estimate(0.0)
        estimator.record(1.0, 10_000_000)
        assert estimator.estimate(1.0) == before

    def test_higher_loss_lower_ceiling(self):
        clean = MathisEstimator(rtt=0.05, loss_rate=0.01)
        dirty = MathisEstimator(rtt=0.05, loss_rate=0.20)
        assert dirty.ceiling < clean.ceiling

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            MathisEstimator(rtt=0, loss_rate=0.05)
        with pytest.raises(ConfigurationError):
            MathisEstimator(rtt=0.1, loss_rate=0.0)
        with pytest.raises(ConfigurationError):
            MathisEstimator(rtt=0.1, loss_rate=0.05, mss=0)
