"""Tests for the bitstream container type."""

import pytest

from repro.errors import BitstreamError
from repro.video.bitstream import Bitstream
from repro.video.frames import Frame, FrameType
from repro.video.gop import Gop


def make_gop(start_index: int, start_pts: float, pattern: str = "IPP"):
    frames = []
    for offset, letter in enumerate(pattern):
        frames.append(
            Frame(
                index=start_index + offset,
                frame_type=FrameType(letter),
                size=8_000 if letter == "I" else 2_000,
                duration=0.04,
                pts=start_pts + offset * 0.04,
            )
        )
    return Gop(frames=tuple(frames))


def make_stream(n_gops: int = 3, pattern: str = "IPP") -> Bitstream:
    gops = []
    index, pts = 0, 0.0
    for _ in range(n_gops):
        gop = make_gop(index, pts, pattern)
        gops.append(gop)
        index += len(pattern)
        pts = gop.end_pts
    return Bitstream(tuple(gops))


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(BitstreamError):
            Bitstream(())

    def test_gops_must_abut(self):
        first = make_gop(0, 0.0)
        gap = make_gop(3, 1.0)
        with pytest.raises(BitstreamError):
            Bitstream((first, gap))

    def test_frame_indices_must_be_contiguous(self):
        first = make_gop(0, 0.0)
        wrong_index = make_gop(5, first.end_pts)
        with pytest.raises(BitstreamError):
            Bitstream((first, wrong_index))

    def test_accepts_list(self):
        stream = Bitstream([make_gop(0, 0.0)])
        assert len(stream) == 1


class TestAccessors:
    def test_len_counts_gops(self):
        assert len(make_stream(4)) == 4

    def test_iteration_yields_gops(self):
        stream = make_stream(3)
        assert list(stream) == list(stream.gops)

    def test_frames_in_order(self):
        stream = make_stream(2)
        indices = [frame.index for frame in stream.frames()]
        assert indices == list(range(6))

    def test_frame_count(self):
        assert make_stream(3).frame_count == 9

    def test_duration(self):
        assert make_stream(2).duration == pytest.approx(0.24)

    def test_size(self):
        stream = make_stream(2)
        assert stream.size == 2 * (8_000 + 2 * 2_000)

    def test_bitrate(self):
        stream = make_stream(1)
        expected = stream.size * 8 / stream.duration
        assert stream.bitrate == pytest.approx(expected)


class TestStats:
    def test_counts(self):
        stats = make_stream(3).stats()
        assert stats.gop_count == 3
        assert stats.frame_count == 9

    def test_gop_extremes(self):
        stats = make_stream(3).stats()
        assert stats.gop_duration_min == pytest.approx(0.12)
        assert stats.gop_duration_max == pytest.approx(0.12)
        assert stats.gop_duration_stdev == pytest.approx(0.0)

    def test_frame_type_means(self):
        stats = make_stream(2).stats()
        assert stats.i_frame_mean_size == pytest.approx(8_000)
        assert stats.p_frame_mean_size == pytest.approx(2_000)
        assert stats.b_frame_mean_size == 0.0

    def test_single_gop_stdev_zero(self):
        assert make_stream(1).stats().gop_duration_stdev == 0.0
