"""Tests for the scene-content model."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.video.scene import (
    Scene,
    SceneKind,
    SceneModelConfig,
    ScenePlan,
    generate_scene_plan,
)


def make_scene(**overrides):
    defaults = dict(
        kind=SceneKind.CALM,
        start=0.0,
        duration=10.0,
        cut_times=(),
        complexity=1.0,
    )
    defaults.update(overrides)
    return Scene(**defaults)


class TestScene:
    def test_end(self):
        assert make_scene(start=2.0, duration=3.0).end == pytest.approx(5.0)

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scene(duration=0.0)

    def test_non_positive_complexity_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scene(complexity=0.0)

    def test_cut_before_start_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scene(start=5.0, cut_times=(4.0,))

    def test_cut_at_end_rejected(self):
        with pytest.raises(ConfigurationError):
            make_scene(start=0.0, duration=10.0, cut_times=(10.0,))

    def test_cut_inside_accepted(self):
        scene = make_scene(cut_times=(3.0, 7.0))
        assert scene.cut_times == (3.0, 7.0)


class TestScenePlan:
    def test_scenes_must_abut(self):
        with pytest.raises(ConfigurationError):
            ScenePlan(
                scenes=(
                    make_scene(duration=5.0),
                    make_scene(start=6.0, duration=5.0),
                )
            )

    def test_duration_sums(self):
        plan = ScenePlan(
            scenes=(
                make_scene(duration=5.0),
                make_scene(start=5.0, duration=7.0),
            )
        )
        assert plan.duration == pytest.approx(12.0)

    def test_empty_plan_duration(self):
        assert ScenePlan().duration == 0.0

    def test_scene_at(self):
        first = make_scene(duration=5.0)
        second = make_scene(start=5.0, duration=5.0, kind=SceneKind.ACTION)
        plan = ScenePlan(scenes=(first, second))
        assert plan.scene_at(2.0) is first
        assert plan.scene_at(5.0) is second

    def test_scene_at_end_returns_last(self):
        plan = ScenePlan(scenes=(make_scene(duration=5.0),))
        assert plan.scene_at(5.0) is plan.scenes[0]

    def test_scene_at_out_of_range(self):
        plan = ScenePlan(scenes=(make_scene(duration=5.0),))
        with pytest.raises(ConfigurationError):
            plan.scene_at(6.0)

    def test_all_cut_times_sorted(self):
        plan = ScenePlan(
            scenes=(
                make_scene(duration=5.0, cut_times=(1.0, 3.0)),
                make_scene(start=5.0, duration=5.0, cut_times=(6.0,)),
            )
        )
        assert plan.all_cut_times() == [1.0, 3.0, 6.0]


class TestSceneModelConfig:
    def test_defaults_valid(self):
        SceneModelConfig()

    def test_bad_probability_rejected(self):
        with pytest.raises(ConfigurationError):
            SceneModelConfig(p_start_action=1.5)

    def test_non_positive_mean_rejected(self):
        with pytest.raises(ConfigurationError):
            SceneModelConfig(calm_scene_mean=0.0)


class TestGenerateScenePlan:
    def test_covers_requested_duration(self):
        plan = generate_scene_plan(60.0, random.Random(1))
        assert plan.duration == pytest.approx(60.0)

    def test_alternates_kinds(self):
        plan = generate_scene_plan(200.0, random.Random(2))
        kinds = [scene.kind for scene in plan.scenes]
        for a, b in zip(kinds, kinds[1:]):
            assert a is not b

    def test_deterministic_for_seed(self):
        a = generate_scene_plan(60.0, random.Random(3))
        b = generate_scene_plan(60.0, random.Random(3))
        assert a == b

    def test_different_seeds_differ(self):
        a = generate_scene_plan(120.0, random.Random(4))
        b = generate_scene_plan(120.0, random.Random(5))
        assert a != b

    def test_zero_duration_rejected(self):
        with pytest.raises(ConfigurationError):
            generate_scene_plan(0.0, random.Random(1))

    def test_action_scenes_cut_faster(self):
        plan = generate_scene_plan(600.0, random.Random(6))
        calm_rate = _mean_cut_rate(plan, SceneKind.CALM)
        action_rate = _mean_cut_rate(plan, SceneKind.ACTION)
        assert action_rate > calm_rate

    @settings(max_examples=25, deadline=None)
    @given(
        duration=st.floats(min_value=5.0, max_value=600.0),
        seed=st.integers(min_value=0, max_value=2**16),
    )
    def test_property_scenes_tile_interval(self, duration, seed):
        plan = generate_scene_plan(duration, random.Random(seed))
        assert plan.scenes[0].start == 0.0
        assert plan.duration == pytest.approx(duration)
        for earlier, later in zip(plan.scenes, plan.scenes[1:]):
            assert later.start == pytest.approx(earlier.end)


def _mean_cut_rate(plan, kind) -> float:
    scenes = [scene for scene in plan.scenes if scene.kind is kind]
    total_cuts = sum(len(scene.cut_times) for scene in scenes)
    total_time = sum(scene.duration for scene in scenes)
    return total_cuts / total_time if total_time else 0.0
