"""Tests for the GOP model."""

import pytest

from repro.errors import BitstreamError
from repro.video.frames import Frame, FrameType
from repro.video.gop import Gop


def frames_for(pattern: str, start_index: int = 0, start_pts: float = 0.0):
    """Build frames from a type pattern like 'IPPB'."""
    frames = []
    for offset, letter in enumerate(pattern):
        frames.append(
            Frame(
                index=start_index + offset,
                frame_type=FrameType(letter),
                size=10_000 if letter == "I" else 2_000,
                duration=0.04,
                pts=start_pts + offset * 0.04,
            )
        )
    return tuple(frames)


class TestGopValidation:
    def test_valid_gop(self):
        gop = Gop(frames=frames_for("IPPBB"))
        assert len(gop) == 5

    def test_empty_rejected(self):
        with pytest.raises(BitstreamError):
            Gop(frames=())

    def test_must_start_with_i(self):
        with pytest.raises(BitstreamError):
            Gop(frames=frames_for("PPI"))

    def test_single_i_frame_gop(self):
        gop = Gop(frames=frames_for("I"))
        assert gop.duration == pytest.approx(0.04)

    def test_second_i_frame_rejected(self):
        with pytest.raises(BitstreamError):
            Gop(frames=frames_for("IPI"))

    def test_non_increasing_pts_rejected(self):
        bad = list(frames_for("IP"))
        bad[1] = Frame(
            index=1,
            frame_type=FrameType.P,
            size=2_000,
            duration=0.04,
            pts=0.0,
        )
        with pytest.raises(BitstreamError):
            Gop(frames=tuple(bad))


class TestGopProperties:
    def test_duration(self):
        gop = Gop(frames=frames_for("IPPP"))
        assert gop.duration == pytest.approx(0.16)

    def test_size_sums_frames(self):
        gop = Gop(frames=frames_for("IPP"))
        assert gop.size == 10_000 + 2 * 2_000

    def test_start_and_end_pts(self):
        gop = Gop(frames=frames_for("IPP", start_pts=1.0))
        assert gop.start_pts == pytest.approx(1.0)
        assert gop.end_pts == pytest.approx(1.12)

    def test_i_frame(self):
        gop = Gop(frames=frames_for("IBBP"))
        assert gop.i_frame.frame_type is FrameType.I

    def test_frame_counts(self):
        gop = Gop(frames=frames_for("IBBPBBP"))
        counts = gop.frame_counts()
        assert counts[FrameType.I] == 1
        assert counts[FrameType.B] == 4
        assert counts[FrameType.P] == 2
