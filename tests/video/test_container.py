"""Tests for the byte-level container."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import BitstreamError
from repro.video.container import (
    MAGIC,
    deserialize_bitstream,
    serialize_bitstream,
)
from repro.video.encoder import EncoderConfig, SyntheticEncoder
from repro.video.scene import generate_scene_plan


def encode(duration=10.0, seed=3):
    rng = random.Random(seed)
    plan = generate_scene_plan(duration, rng)
    return SyntheticEncoder(EncoderConfig()).encode(plan, rng)


class TestRoundTrip:
    def test_frame_table_roundtrips(self):
        stream = encode()
        restored = deserialize_bitstream(serialize_bitstream(stream))
        assert restored.size == stream.size
        assert restored.frame_count == stream.frame_count
        assert len(restored.gops) == len(stream.gops)

    def test_frame_level_fidelity(self):
        stream = encode()
        restored = deserialize_bitstream(serialize_bitstream(stream))
        for original, parsed in zip(stream.frames(), restored.frames()):
            assert parsed.index == original.index
            assert parsed.frame_type == original.frame_type
            assert parsed.size == original.size
            assert parsed.duration == pytest.approx(
                original.duration, abs=1e-6
            )

    def test_payload_inflates_to_stream_size(self):
        stream = encode(duration=5.0)
        without = serialize_bitstream(stream, include_payload=False)
        with_payload = serialize_bitstream(stream, include_payload=True)
        assert len(with_payload) - len(without) == stream.size

    def test_payload_ignored_on_parse(self):
        stream = encode(duration=5.0)
        data = serialize_bitstream(stream, include_payload=True)
        restored = deserialize_bitstream(data)
        assert restored.size == stream.size

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_property_roundtrip_any_seed(self, seed):
        stream = encode(duration=4.0, seed=seed)
        restored = deserialize_bitstream(serialize_bitstream(stream))
        assert [f.size for f in restored.frames()] == [
            f.size for f in stream.frames()
        ]


class TestMalformedInput:
    def test_truncated_header(self):
        with pytest.raises(BitstreamError):
            deserialize_bitstream(b"RP")

    def test_bad_magic(self):
        data = serialize_bitstream(encode(duration=2.0))
        with pytest.raises(BitstreamError):
            deserialize_bitstream(b"XXXX" + data[4:])

    def test_magic_constant(self):
        assert MAGIC == b"RPV1"

    def test_truncated_frame_table(self):
        data = serialize_bitstream(encode(duration=2.0))
        with pytest.raises(BitstreamError):
            deserialize_bitstream(data[: len(data) // 2])

    def test_unknown_frame_type_byte(self):
        data = bytearray(serialize_bitstream(encode(duration=2.0)))
        data[8] = ord("X")  # first frame record's type byte
        with pytest.raises(BitstreamError):
            deserialize_bitstream(bytes(data))
