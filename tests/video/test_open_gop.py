"""Tests for open-GOP encoding and its splicing constraints."""

import random

import pytest

from repro.core.splicer import DurationSplicer, GopSplicer
from repro.errors import SpliceError
from repro.video.bitstream import Bitstream
from repro.video.encoder import EncoderConfig, SyntheticEncoder
from repro.video.frames import Frame, FrameType
from repro.video.gop import Gop
from repro.video.scene import generate_scene_plan


def encode(open_gop: bool, keyframe_interval=50, duration=30.0, seed=9):
    rng = random.Random(seed)
    plan = generate_scene_plan(duration, rng)
    config = EncoderConfig(
        keyframe_interval=keyframe_interval, open_gop=open_gop
    )
    return SyntheticEncoder(config).encode(plan, rng)


class TestOpenGopEncoding:
    def test_closed_mode_has_only_closed_gops(self):
        stream = encode(open_gop=False)
        assert all(gop.closed for gop in stream.gops)

    def test_open_mode_produces_open_gops(self):
        # A small keyframe interval forces many interval I-frames
        # inside calm shots; those become open GOPs.
        stream = encode(open_gop=True, keyframe_interval=50)
        assert any(not gop.closed for gop in stream.gops)

    def test_stream_starts_closed(self):
        stream = encode(open_gop=True)
        assert stream.gops[0].closed

    def test_open_flag_does_not_change_sizes(self):
        closed = encode(open_gop=False, seed=4)
        opened = encode(open_gop=True, seed=4)
        assert closed.size == opened.size
        assert closed.frame_count == opened.frame_count


class TestGopSplicerWithOpenGops:
    def test_segments_never_start_with_open_gop(self):
        stream = encode(open_gop=True, keyframe_interval=50)
        result = GopSplicer().splice(stream)
        # Fewer segments than GOPs: open GOPs merged with predecessors.
        open_count = sum(1 for gop in stream.gops if not gop.closed)
        assert open_count > 0
        assert len(result) == len(stream.gops) - open_count

    def test_open_stream_segments_still_cover_everything(self):
        stream = encode(open_gop=True, keyframe_interval=50)
        result = GopSplicer().splice(stream)
        total_frames = sum(len(s.frames) for s in result.segments)
        assert total_frames == stream.frame_count
        assert result.total_size == stream.size

    def test_closed_stream_unchanged_behaviour(self):
        stream = encode(open_gop=False)
        result = GopSplicer().splice(stream)
        assert len(result) == len(stream.gops)

    def test_leading_open_gop_rejected(self):
        frames_a = (
            Frame(0, FrameType.I, 1000, 0.04, 0.0),
            Frame(1, FrameType.P, 500, 0.04, 0.04),
        )
        stream = Bitstream(
            (Gop(frames=frames_a, closed=False),)
        )
        with pytest.raises(SpliceError):
            GopSplicer().splice(stream)

    def test_grouping_counts_closed_groups(self):
        stream = encode(open_gop=True, keyframe_interval=50)
        single = GopSplicer().splice(stream)
        double = GopSplicer(gops_per_segment=2).splice(stream)
        assert len(double) == (len(single) + 1) // 2


class TestDurationSplicerUnaffected:
    def test_duration_splicing_works_on_open_gop_stream(self):
        stream = encode(open_gop=True, keyframe_interval=50)
        result = DurationSplicer(4.0).splice(stream)
        for segment in result.segments:
            assert segment.frames[0].frame_type is FrameType.I
