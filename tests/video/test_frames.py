"""Tests for repro.video.frames."""

import pytest

from repro.errors import BitstreamError
from repro.video.frames import Frame, FrameType


def make_frame(**overrides):
    defaults = dict(
        index=0,
        frame_type=FrameType.I,
        size=10_000,
        duration=0.04,
        pts=0.0,
    )
    defaults.update(overrides)
    return Frame(**defaults)


class TestFrameType:
    def test_three_types(self):
        assert {t.value for t in FrameType} == {"I", "P", "B"}

    def test_i_and_p_are_reference(self):
        assert FrameType.I.is_reference
        assert FrameType.P.is_reference

    def test_b_is_not_reference(self):
        assert not FrameType.B.is_reference


class TestFrameValidation:
    def test_valid_frame(self):
        frame = make_frame()
        assert frame.size == 10_000

    def test_negative_index_rejected(self):
        with pytest.raises(BitstreamError):
            make_frame(index=-1)

    def test_zero_size_rejected(self):
        with pytest.raises(BitstreamError):
            make_frame(size=0)

    def test_zero_duration_rejected(self):
        with pytest.raises(BitstreamError):
            make_frame(duration=0.0)

    def test_negative_pts_rejected(self):
        with pytest.raises(BitstreamError):
            make_frame(pts=-0.1)


class TestFrameProperties:
    def test_end_pts(self):
        frame = make_frame(pts=1.0, duration=0.04)
        assert frame.end_pts == pytest.approx(1.04)

    def test_frames_are_immutable(self):
        frame = make_frame()
        with pytest.raises(AttributeError):
            frame.size = 5

    def test_equality_is_structural(self):
        assert make_frame() == make_frame()


class TestAsType:
    def test_converts_type_and_size(self):
        original = make_frame(frame_type=FrameType.P, size=3000)
        converted = original.as_type(FrameType.I, 20_000)
        assert converted.frame_type is FrameType.I
        assert converted.size == 20_000

    def test_preserves_timing(self):
        original = make_frame(
            frame_type=FrameType.B, size=1000, pts=2.0, duration=0.04
        )
        converted = original.as_type(FrameType.I, 9000)
        assert converted.pts == original.pts
        assert converted.duration == original.duration
        assert converted.index == original.index

    def test_original_untouched(self):
        original = make_frame(frame_type=FrameType.P, size=3000)
        original.as_type(FrameType.I, 20_000)
        assert original.frame_type is FrameType.P
        assert original.size == 3000
