"""Tests for the synthetic CBR encoder."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.errors import ConfigurationError
from repro.video.encoder import (
    EncoderConfig,
    SyntheticEncoder,
    encode_paper_video,
)
from repro.video.frames import FrameType
from repro.video.scene import generate_scene_plan


def encode(duration=20.0, seed=1, **config_overrides):
    rng = random.Random(seed)
    plan = generate_scene_plan(duration, rng)
    return SyntheticEncoder(EncoderConfig(**config_overrides)).encode(
        plan, rng
    )


class TestEncoderConfig:
    def test_defaults_valid(self):
        cfg = EncoderConfig()
        assert cfg.fps == 25

    def test_frame_duration(self):
        assert EncoderConfig(fps=50).frame_duration == pytest.approx(0.02)

    def test_bytes_per_frame(self):
        cfg = EncoderConfig(fps=25, bitrate=1_000_000.0)
        assert cfg.bytes_per_frame == pytest.approx(5000.0)

    def test_zero_fps_rejected(self):
        with pytest.raises(ConfigurationError):
            EncoderConfig(fps=0)

    def test_weight_ordering_enforced(self):
        with pytest.raises(ConfigurationError):
            EncoderConfig(i_weight=1.0, p_weight=2.0)

    def test_negative_b_frames_rejected(self):
        with pytest.raises(ConfigurationError):
            EncoderConfig(b_frames=-1)


class TestEncoding:
    def test_hits_target_bitrate(self):
        stream = encode(duration=30.0, bitrate=950_000.0)
        assert stream.bitrate == pytest.approx(950_000.0, rel=0.01)

    def test_frame_count_matches_fps(self):
        stream = encode(duration=20.0)
        assert stream.frame_count == 500  # 20 s * 25 fps

    def test_starts_with_i_frame(self):
        stream = encode()
        first = next(stream.frames())
        assert first.frame_type is FrameType.I

    def test_deterministic(self):
        a = encode(seed=11)
        b = encode(seed=11)
        assert [f.size for f in a.frames()] == [f.size for f in b.frames()]

    def test_seed_changes_stream(self):
        a = encode(seed=11)
        b = encode(seed=12)
        assert [f.size for f in a.frames()] != [f.size for f in b.frames()]

    def test_i_frames_are_larger_on_average(self):
        stats = encode(duration=60.0).stats()
        assert stats.i_frame_mean_size > 2 * stats.p_frame_mean_size
        assert stats.p_frame_mean_size > stats.b_frame_mean_size

    def test_keyframe_interval_bounds_gop_length(self):
        stream = encode(duration=60.0, keyframe_interval=100)
        assert max(len(gop) for gop in stream.gops) <= 100

    def test_no_b_frames_when_disabled(self):
        stream = encode(b_frames=0)
        assert all(
            frame.frame_type is not FrameType.B
            for frame in stream.frames()
        )

    def test_gop_durations_vary_with_content(self):
        stats = encode(duration=120.0).stats()
        # The paper's premise: "very big" and very small GOPs coexist.
        assert stats.gop_duration_max > 5 * stats.gop_duration_min

    @settings(max_examples=10, deadline=None)
    @given(seed=st.integers(min_value=0, max_value=2**16))
    def test_property_gops_are_closed(self, seed):
        stream = encode(duration=15.0, seed=seed)
        for gop in stream.gops:
            assert gop.frames[0].frame_type is FrameType.I
            assert all(
                f.frame_type is not FrameType.I for f in gop.frames[1:]
            )


class TestEncodePaperVideo:
    def test_duration_and_rate(self):
        stream = encode_paper_video(seed=0)
        assert stream.duration == pytest.approx(120.0, abs=0.1)
        assert stream.bitrate == pytest.approx(950_000.0, rel=0.01)

    def test_custom_bitrate(self):
        stream = encode_paper_video(seed=0, duration=20.0, bitrate=500_000)
        assert stream.bitrate == pytest.approx(500_000.0, rel=0.01)

    def test_config_passthrough_keeps_bitrate_argument(self):
        cfg = EncoderConfig(fps=30)
        stream = encode_paper_video(
            seed=0, duration=9.0, bitrate=600_000, config=cfg
        )
        assert stream.frame_count == 270
        assert stream.bitrate == pytest.approx(600_000.0, rel=0.01)
