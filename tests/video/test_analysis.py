"""Tests for bitrate analysis helpers."""

import pytest

from repro.errors import ConfigurationError
from repro.video.analysis import bitrate_profile, sustainable_bandwidth
from repro.video.bitstream import Bitstream
from repro.video.frames import Frame, FrameType
from repro.video.gop import Gop


def constant_stream(
    n_frames=50, frame_size=5000, fps=25, gop_len=25
) -> Bitstream:
    gops = []
    frames = []
    for index in range(n_frames):
        frame_type = FrameType.I if index % gop_len == 0 else FrameType.P
        if frame_type is FrameType.I and frames:
            gops.append(Gop(frames=tuple(frames)))
            frames = []
        frames.append(
            Frame(
                index=index,
                frame_type=frame_type,
                size=frame_size,
                duration=1.0 / fps,
                pts=index / fps,
            )
        )
    gops.append(Gop(frames=tuple(frames)))
    return Bitstream(tuple(gops))


class TestBitrateProfile:
    def test_constant_stream_is_flat(self):
        stream = constant_stream()
        profile = bitrate_profile(stream, window=1.0)
        expected = 5000 * 8 * 25
        for rate in profile.rates:
            assert rate == pytest.approx(expected, rel=0.01)
        assert profile.peak_to_mean == pytest.approx(1.0, rel=0.01)

    def test_window_count(self):
        stream = constant_stream(n_frames=100)  # 4 seconds
        profile = bitrate_profile(stream, window=1.0)
        assert len(profile.rates) == 4

    def test_mean_matches_stream_bitrate(self):
        stream = constant_stream()
        profile = bitrate_profile(stream, window=0.5)
        assert profile.mean == pytest.approx(stream.bitrate, rel=0.05)

    def test_synthetic_video_is_bursty(self, short_video):
        profile = bitrate_profile(short_video, window=1.0)
        # The scene model creates action spikes above nominal.
        assert profile.peak_to_mean > 1.1

    def test_invalid_window_rejected(self, short_video):
        with pytest.raises(ConfigurationError):
            bitrate_profile(short_video, window=0.0)


class TestSustainableBandwidth:
    def test_constant_stream_needs_its_rate(self):
        stream = constant_stream()
        need = sustainable_bandwidth(stream)
        assert need == pytest.approx(5000 * 25, rel=0.05)

    def test_startup_buffer_lowers_requirement(self, short_video):
        cold = sustainable_bandwidth(short_video)
        warm = sustainable_bandwidth(short_video, startup_buffer=4.0)
        assert warm < cold

    def test_bursty_stream_needs_more_than_mean(self, short_video):
        need = sustainable_bandwidth(short_video)
        assert need > short_video.size / short_video.duration * 0.99

    def test_negative_buffer_rejected(self, short_video):
        with pytest.raises(ConfigurationError):
            sustainable_bandwidth(short_video, startup_buffer=-1.0)
