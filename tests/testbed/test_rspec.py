"""Tests for RSpec generation and parsing."""

import pytest

from repro.errors import RSpecError
from repro.testbed.rspec import (
    RSpecDocument,
    RSpecLink,
    RSpecNode,
    SoftwareInstall,
    parse_rspec,
    star_rspec,
)


class TestModels:
    def test_node_requires_name(self):
        with pytest.raises(RSpecError):
            RSpecNode(client_id="")

    def test_link_requires_distinct_endpoints(self):
        with pytest.raises(RSpecError):
            RSpecLink(
                client_id="l", endpoints=("a", "a"), capacity_kbps=100
            )

    def test_link_capacity_positive(self):
        with pytest.raises(RSpecError):
            RSpecLink(
                client_id="l", endpoints=("a", "b"), capacity_kbps=0
            )

    def test_link_unit_conversions(self):
        link = RSpecLink(
            client_id="l",
            endpoints=("a", "b"),
            capacity_kbps=1024,
            latency_ms=12.5,
        )
        assert link.capacity_bytes_per_s == pytest.approx(128_000.0)
        assert link.latency_seconds == pytest.approx(0.0125)

    def test_document_rejects_duplicate_nodes(self):
        with pytest.raises(RSpecError):
            RSpecDocument(
                nodes=(RSpecNode("a"), RSpecNode("a")), links=()
            )

    def test_document_rejects_dangling_link(self):
        with pytest.raises(RSpecError):
            RSpecDocument(
                nodes=(RSpecNode("a"),),
                links=(
                    RSpecLink(
                        client_id="l",
                        endpoints=("a", "ghost"),
                        capacity_kbps=1,
                    ),
                ),
            )

    def test_links_of(self):
        document = star_rspec(n_peers=2, capacity_kbps=1000)
        assert len(document.links_of("switch")) == 3
        assert len(document.links_of("peer-1")) == 1

    def test_node_lookup(self):
        document = star_rspec(n_peers=1, capacity_kbps=1000)
        assert document.node("seeder").client_id == "seeder"
        with pytest.raises(RSpecError):
            document.node("nope")


class TestStarRspec:
    def test_paper_slice_shape(self):
        document = star_rspec(n_peers=19, capacity_kbps=8192)
        # 19 peers + seeder + hub
        assert len(document.nodes) == 21
        assert len(document.links) == 20

    def test_every_link_touches_hub(self):
        document = star_rspec(n_peers=3, capacity_kbps=1000)
        for link in document.links:
            assert "switch" in link.endpoints

    def test_manual_install_flag_set(self):
        document = star_rspec(n_peers=1, capacity_kbps=1000)
        seeder = document.node("seeder")
        assert any(install.manual for install in seeder.installs)

    def test_invalid_peer_count(self):
        with pytest.raises(RSpecError):
            star_rspec(n_peers=0, capacity_kbps=1000)


class TestXmlRoundTrip:
    def test_roundtrip_preserves_structure(self):
        document = star_rspec(
            n_peers=4, capacity_kbps=2048, latency_ms=25.0,
            packet_loss=0.05,
        )
        parsed = parse_rspec(document.to_xml())
        assert len(parsed.nodes) == len(document.nodes)
        assert len(parsed.links) == len(document.links)
        for original, round_tripped in zip(
            document.links, parsed.links
        ):
            assert round_tripped.capacity_kbps == original.capacity_kbps
            assert round_tripped.latency_ms == pytest.approx(
                original.latency_ms
            )
            assert round_tripped.packet_loss == pytest.approx(
                original.packet_loss
            )

    def test_roundtrip_preserves_services(self):
        document = star_rspec(n_peers=1, capacity_kbps=1000)
        parsed = parse_rspec(document.to_xml())
        seeder = parsed.node("seeder")
        assert len(seeder.installs) == 2
        assert seeder.execute

    def test_xml_contains_fig1_attributes(self):
        xml = star_rspec(n_peers=1, capacity_kbps=1000).to_xml()
        for attribute in ("capacity", "latency", "packet_loss"):
            assert attribute in xml

    def test_malformed_xml_rejected(self):
        with pytest.raises(RSpecError):
            parse_rspec("<rspec>not closed")

    def test_link_without_property_rejected(self):
        xml = (
            '<rspec type="request" '
            'xmlns="http://www.geni.net/resources/rspec/3">'
            '<node client_id="a"/><node client_id="b"/>'
            '<link client_id="l"/></rspec>'
        )
        with pytest.raises(RSpecError):
            parse_rspec(xml)

    def test_node_without_id_rejected(self):
        xml = (
            '<rspec type="request" '
            'xmlns="http://www.geni.net/resources/rspec/3">'
            "<node/></rspec>"
        )
        with pytest.raises(RSpecError):
            parse_rspec(xml)
