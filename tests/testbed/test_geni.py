"""Tests for the simulated InstaGENI rack deployment."""

import pytest

from repro.errors import RSpecError
from repro.testbed.geni import InstaGeniRack, swarm_config_from_rspec
from repro.testbed.rspec import (
    RSpecDocument,
    RSpecLink,
    RSpecNode,
    star_rspec,
)


class TestDeploy:
    def test_deploys_all_non_hub_nodes(self):
        document = star_rspec(n_peers=3, capacity_kbps=1000)
        deployed = InstaGeniRack().deploy(document)
        names = {node.client_id for node in deployed}
        assert names == {"seeder", "peer-1", "peer-2", "peer-3"}

    def test_link_parameters_carried(self):
        document = star_rspec(
            n_peers=1, capacity_kbps=1024, latency_ms=12.5,
            packet_loss=0.02,
        )
        (node,) = [
            n
            for n in InstaGeniRack().deploy(document)
            if n.client_id == "peer-1"
        ]
        assert node.bandwidth == pytest.approx(128_000.0)
        assert node.latency_to_hub == pytest.approx(0.0125)
        assert node.loss_rate == pytest.approx(0.02)

    def test_manual_installs_reported(self):
        document = star_rspec(n_peers=1, capacity_kbps=1000)
        deployed = InstaGeniRack().deploy(document)
        seeder = next(n for n in deployed if n.client_id == "seeder")
        assert seeder.pending_manual
        assert seeder.installed

    def test_node_without_hub_link_rejected(self):
        document = RSpecDocument(
            nodes=(RSpecNode("switch"), RSpecNode("orphan")), links=()
        )
        with pytest.raises(RSpecError):
            InstaGeniRack().deploy(document)

    def test_hub_only_document_rejected(self):
        document = RSpecDocument(nodes=(RSpecNode("switch"),), links=())
        with pytest.raises(RSpecError):
            InstaGeniRack().deploy(document)

    def test_build_topology(self):
        document = star_rspec(n_peers=2, capacity_kbps=1000)
        topology = InstaGeniRack().build_topology(document)
        assert len(topology) == 3
        assert "seeder" in topology


class TestSwarmConfigFromRspec:
    def test_derives_parameters(self):
        document = star_rspec(
            n_peers=19, capacity_kbps=8192, latency_ms=12.5,
            packet_loss=0.0253,
        )
        config = swarm_config_from_rspec(document)
        assert config.n_leechers == 19
        assert config.bandwidth == pytest.approx(1_024_000.0)
        assert config.peer_rtt == pytest.approx(0.05)
        assert config.path_loss == pytest.approx(0.05, abs=0.001)

    def test_overrides_win(self):
        document = star_rspec(n_peers=2, capacity_kbps=1000)
        config = swarm_config_from_rspec(document, seed=99)
        assert config.seed == 99

    def test_missing_seeder_rejected(self):
        document = star_rspec(
            n_peers=2, capacity_kbps=1000, seeder_name="origin"
        )
        with pytest.raises(RSpecError):
            swarm_config_from_rspec(document)  # expects "seeder"

    def test_mismatched_peer_capacity_rejected(self):
        nodes = (
            RSpecNode("switch"),
            RSpecNode("seeder"),
            RSpecNode("peer-1"),
            RSpecNode("peer-2"),
        )
        links = (
            RSpecLink("l0", ("seeder", "switch"), 1000),
            RSpecLink("l1", ("peer-1", "switch"), 1000),
            RSpecLink("l2", ("peer-2", "switch"), 2000),
        )
        document = RSpecDocument(nodes=nodes, links=links)
        with pytest.raises(RSpecError):
            swarm_config_from_rspec(document)
