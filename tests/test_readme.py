"""The README's code examples must actually run."""

import re
from pathlib import Path

import pytest

README = Path(__file__).resolve().parent.parent / "README.md"


def python_blocks():
    text = README.read_text(encoding="utf-8")
    return re.findall(r"```python\n(.*?)```", text, flags=re.DOTALL)


class TestReadme:
    def test_readme_exists_with_title(self):
        text = README.read_text(encoding="utf-8")
        assert text.startswith("# repro")
        assert "ICDCS 2015" in text

    def test_has_python_examples(self):
        assert len(python_blocks()) >= 1

    @pytest.mark.slow
    def test_python_blocks_execute(self, capsys):
        for block in python_blocks():
            exec(compile(block, "<README>", "exec"), {})
        # The quickstart block prints the three observables.
        out = capsys.readouterr().out
        assert out.strip()

    def test_mentioned_files_exist(self):
        root = README.parent
        for name in (
            "DESIGN.md",
            "EXPERIMENTS.md",
            "docs/API.md",
            "examples/quickstart.py",
            "benchmarks",
        ):
            assert (root / name).exists(), name
