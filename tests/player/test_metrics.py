"""Tests for streaming metrics."""

import pytest

from repro.errors import PlaybackError
from repro.player.metrics import StallEvent, StreamingMetrics


class TestStallEvent:
    def test_duration(self):
        stall = StallEvent(start=10.0, end=13.5, next_segment=4)
        assert stall.duration == pytest.approx(3.5)

    def test_end_before_start_rejected(self):
        with pytest.raises(PlaybackError):
            StallEvent(start=10.0, end=9.0, next_segment=0)

    def test_zero_length_allowed(self):
        assert StallEvent(start=1.0, end=1.0, next_segment=0).duration == 0


class TestStreamingMetrics:
    def test_defaults(self):
        metrics = StreamingMetrics()
        assert metrics.startup_time is None
        assert metrics.stall_count == 0
        assert metrics.total_stall_duration == 0.0
        assert not metrics.finished

    def test_startup_time(self):
        metrics = StreamingMetrics(session_start=5.0)
        metrics.playback_start = 8.5
        assert metrics.startup_time == pytest.approx(3.5)

    def test_stall_aggregation(self):
        metrics = StreamingMetrics()
        metrics.stalls.append(StallEvent(1.0, 2.0, 1))
        metrics.stalls.append(StallEvent(5.0, 8.0, 2))
        assert metrics.stall_count == 2
        assert metrics.total_stall_duration == pytest.approx(4.0)

    def test_finished(self):
        metrics = StreamingMetrics()
        metrics.playback_end = 120.0
        assert metrics.finished
