"""Tests for player pre-roll buffering."""

import pytest

from repro.errors import PlaybackError
from repro.net.engine import Simulator
from repro.player.player import Player, PlayerState


def make_player(preroll, durations=(4.0, 4.0, 4.0, 4.0)):
    sim = Simulator()
    return sim, Player(sim, list(durations), preroll_segments=preroll)


class TestPreroll:
    def test_default_starts_on_first_segment(self):
        sim, player = make_player(preroll=1)
        player.segment_available(0)
        assert player.state is PlayerState.PLAYING

    def test_waits_for_contiguous_preroll(self):
        sim, player = make_player(preroll=3)
        player.segment_available(0)
        player.segment_available(1)
        assert player.state is PlayerState.WAITING
        player.segment_available(2)
        assert player.state is PlayerState.PLAYING

    def test_gap_does_not_satisfy_preroll(self):
        sim, player = make_player(preroll=2)
        player.segment_available(0)
        player.segment_available(2)  # gap at 1
        assert player.state is PlayerState.WAITING
        player.segment_available(1)
        assert player.state is PlayerState.PLAYING

    def test_preroll_delays_startup_metric(self):
        sim, player = make_player(preroll=2)
        sim.schedule(1.0, player.segment_available, 0)
        sim.schedule(5.0, player.segment_available, 1)
        sim.run(until=5.0)
        assert player.metrics.playback_start == pytest.approx(5.0)

    def test_preroll_reduces_early_stalls(self):
        # With preroll 2, the player starts with 8 s of buffer and
        # survives a slow third segment that stalls the preroll-1
        # player.
        for preroll, expected_stalls in ((1, 2), (2, 0)):
            sim, player = make_player(preroll=preroll)
            sim.schedule(0.0, player.segment_available, 0)
            sim.schedule(5.0, player.segment_available, 1)
            sim.schedule(10.0, player.segment_available, 2)
            sim.schedule(10.0, player.segment_available, 3)
            sim.run()
            assert player.metrics.stall_count == expected_stalls, preroll

    def test_preroll_capped_at_segment_count(self):
        sim, player = make_player(preroll=99, durations=(4.0, 4.0))
        player.segment_available(0)
        player.segment_available(1)
        assert player.state is PlayerState.PLAYING

    def test_invalid_preroll_rejected(self):
        with pytest.raises(PlaybackError):
            make_player(preroll=0)
