"""Tests for the playback buffer."""

import pytest

from repro.errors import PlaybackError
from repro.player.buffer import PlaybackBuffer


@pytest.fixture()
def buffer():
    return PlaybackBuffer([4.0, 4.0, 4.0, 2.0])


class TestValidation:
    def test_empty_rejected(self):
        with pytest.raises(PlaybackError):
            PlaybackBuffer([])

    def test_non_positive_duration_rejected(self):
        with pytest.raises(PlaybackError):
            PlaybackBuffer([4.0, 0.0])

    def test_out_of_range_index(self, buffer):
        with pytest.raises(PlaybackError):
            buffer.has(4)
        with pytest.raises(PlaybackError):
            buffer.add(-1)


class TestAdd:
    def test_add_and_has(self, buffer):
        assert not buffer.has(0)
        buffer.add(0)
        assert buffer.has(0)
        assert len(buffer) == 1

    def test_duplicate_add_rejected(self, buffer):
        buffer.add(1)
        with pytest.raises(PlaybackError):
            buffer.add(1)

    def test_complete(self, buffer):
        for index in range(4):
            buffer.add(index)
        assert buffer.complete

    def test_segment_count(self, buffer):
        assert buffer.segment_count == 4

    def test_duration_of(self, buffer):
        assert buffer.duration_of(3) == pytest.approx(2.0)


class TestContiguity:
    def test_contiguous_through_stops_at_gap(self, buffer):
        buffer.add(0)
        buffer.add(1)
        buffer.add(3)
        assert buffer.contiguous_through(0) == 2

    def test_contiguous_through_from_missing(self, buffer):
        assert buffer.contiguous_through(0) == 0

    def test_contiguous_through_end(self, buffer):
        for index in range(4):
            buffer.add(index)
        assert buffer.contiguous_through(0) == 4

    def test_missing(self, buffer):
        buffer.add(1)
        assert buffer.missing() == [0, 2, 3]


class TestBufferedPlaytime:
    def test_zero_when_head_missing(self, buffer):
        buffer.add(1)
        assert buffer.buffered_playtime(0) == 0.0

    def test_counts_contiguous_run(self, buffer):
        buffer.add(0)
        buffer.add(1)
        assert buffer.buffered_playtime(0) == pytest.approx(8.0)

    def test_offset_subtracts_played_portion(self, buffer):
        buffer.add(0)
        buffer.add(1)
        assert buffer.buffered_playtime(0, offset=3.0) == pytest.approx(
            5.0
        )

    def test_gap_truncates(self, buffer):
        buffer.add(0)
        buffer.add(2)
        assert buffer.buffered_playtime(0) == pytest.approx(4.0)

    def test_negative_offset_rejected(self, buffer):
        buffer.add(0)
        with pytest.raises(PlaybackError):
            buffer.buffered_playtime(0, offset=-1.0)

    def test_never_negative(self, buffer):
        buffer.add(0)
        assert buffer.buffered_playtime(0, offset=99.0) == 0.0
