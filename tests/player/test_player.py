"""Tests for the player state machine."""

import pytest

from repro.net.engine import Simulator
from repro.player.metrics import StreamingMetrics
from repro.player.player import Player, PlayerState


def make_player(durations=(4.0, 4.0, 4.0), **kwargs):
    sim = Simulator()
    player = Player(sim, list(durations), **kwargs)
    return sim, player


class TestStartup:
    def test_waits_for_first_segment(self):
        sim, player = make_player()
        assert player.state is PlayerState.WAITING
        assert player.next_needed == 0

    def test_playback_starts_on_segment_zero(self):
        sim, player = make_player()
        sim.schedule(2.5, player.segment_available, 0)
        sim.run(until=2.5)
        assert player.state is PlayerState.PLAYING
        assert player.metrics.playback_start == pytest.approx(2.5)

    def test_non_zero_segment_does_not_start_playback(self):
        sim, player = make_player()
        sim.schedule(1.0, player.segment_available, 1)
        sim.run(until=2.0)
        assert player.state is PlayerState.WAITING

    def test_external_metrics_dates_session(self):
        sim = Simulator()
        metrics = StreamingMetrics(session_start=0.0)
        sim.schedule(3.0, lambda: None)
        sim.run()  # advance the clock
        player = Player(sim, [4.0], metrics=metrics)
        player.segment_available(0)
        assert metrics.startup_time == pytest.approx(3.0)


class TestContinuousPlayback:
    def test_plays_through_buffered_segments(self):
        sim, player = make_player()
        for index in range(3):
            player.segment_available(index)
        sim.run()
        assert player.state is PlayerState.FINISHED
        assert player.metrics.playback_end == pytest.approx(12.0)
        assert player.metrics.stall_count == 0

    def test_position_advances_with_clock(self):
        sim, player = make_player()
        player.segment_available(0)
        sim.schedule(1.5, lambda: None)
        sim.run(until=1.5)
        assert player.position() == pytest.approx(1.5)

    def test_next_needed_while_playing(self):
        sim, player = make_player()
        player.segment_available(0)
        assert player.next_needed == 1


class TestStalls:
    def test_stall_on_gap(self):
        sim, player = make_player()
        player.segment_available(0)
        sim.run(until=5.0)
        assert player.state is PlayerState.STALLED
        assert player.next_needed == 1

    def test_resume_records_stall_event(self):
        sim, player = make_player()
        player.segment_available(0)
        sim.schedule(6.0, player.segment_available, 1)
        sim.schedule(6.0, player.segment_available, 2)
        sim.run()
        assert player.state is PlayerState.FINISHED
        (stall,) = player.metrics.stalls
        assert stall.start == pytest.approx(4.0)
        assert stall.end == pytest.approx(6.0)
        assert stall.next_segment == 1

    def test_out_of_order_arrival_does_not_resume(self):
        sim, player = make_player()
        player.segment_available(0)
        sim.schedule(5.0, player.segment_available, 2)
        sim.run(until=6.0)
        assert player.state is PlayerState.STALLED

    def test_resume_consumes_prebuffered_run(self):
        sim, player = make_player()
        player.segment_available(0)
        sim.schedule(5.0, player.segment_available, 2)
        sim.schedule(7.0, player.segment_available, 1)
        sim.run()
        assert player.state is PlayerState.FINISHED
        assert player.metrics.stall_count == 1

    def test_multiple_stalls_counted(self):
        sim, player = make_player()
        player.segment_available(0)
        sim.schedule(6.0, player.segment_available, 1)
        sim.schedule(15.0, player.segment_available, 2)
        sim.run()
        assert player.metrics.stall_count == 2
        assert player.metrics.total_stall_duration == pytest.approx(
            (6.0 - 4.0) + (15.0 - 10.0)
        )


class TestBufferedPlaytime:
    def test_zero_while_waiting(self):
        _, player = make_player()
        assert player.buffered_playtime() == 0.0

    def test_zero_while_stalled(self):
        sim, player = make_player()
        player.segment_available(0)
        sim.run(until=5.0)
        assert player.buffered_playtime() == 0.0

    def test_counts_remaining_contiguous_run(self):
        sim, player = make_player()
        player.segment_available(0)
        player.segment_available(1)
        sim.schedule(1.0, lambda: None)
        sim.run(until=1.0)
        assert player.buffered_playtime() == pytest.approx(7.0)


class TestStateChangeHook:
    def test_transitions_reported(self):
        transitions = []
        sim, player = make_player(
            on_state_change=lambda old, new: transitions.append(
                (old.value, new.value)
            )
        )
        player.segment_available(0)
        sim.schedule(6.0, player.segment_available, 1)
        sim.schedule(6.0, player.segment_available, 2)
        sim.run()
        assert transitions == [
            ("waiting", "playing"),
            ("playing", "stalled"),
            ("stalled", "playing"),
            ("playing", "finished"),
        ]
