"""Tests for the ABR baseline (ladder, policies, session)."""

import pytest

from repro.abr import (
    AbrSession,
    AbrSessionConfig,
    BitrateLadder,
    BufferBasedAbr,
    Rendition,
    ThroughputAbr,
    encode_ladder,
)
from repro.abr.policy import FixedRung
from repro.errors import ConfigurationError
from repro.units import kB_per_s


@pytest.fixture(scope="module")
def ladder():
    return encode_ladder(
        seed=3,
        duration=24.0,
        bitrates=(250_000.0, 500_000.0, 1_000_000.0),
        segment_duration=4.0,
    )


class TestLadder:
    def test_rungs_sorted_ascending(self, ladder):
        assert list(ladder.bitrates) == sorted(ladder.bitrates)

    def test_segment_alignment(self, ladder):
        assert ladder.segment_count == 6
        for index in range(ladder.segment_count):
            duration = ladder.segment_duration(index)
            for rung in range(len(ladder)):
                segment = ladder.rung(rung).splice.segments[index]
                assert segment.duration == pytest.approx(duration)

    def test_higher_rungs_are_bigger(self, ladder):
        for index in range(ladder.segment_count):
            sizes = [
                ladder.segment_size(r, index)
                for r in range(len(ladder))
            ]
            assert sizes == sorted(sizes)

    def test_top_and_bottom(self, ladder):
        assert ladder.top.bitrate == max(ladder.bitrates)
        assert ladder.bottom.bitrate == min(ladder.bitrates)

    def test_misaligned_renditions_rejected(self, ladder):
        other = encode_ladder(
            seed=3,
            duration=24.0,
            bitrates=(250_000.0,),
            segment_duration=8.0,
        )
        with pytest.raises(ConfigurationError):
            BitrateLadder(
                [
                    Rendition(1.0, ladder.top.splice),
                    Rendition(2.0, other.top.splice),
                ]
            )

    def test_empty_rejected(self):
        with pytest.raises(ConfigurationError):
            BitrateLadder([])
        with pytest.raises(ConfigurationError):
            encode_ladder(bitrates=())


class TestPolicies:
    def test_throughput_picks_under_budget(self, ladder):
        policy = ThroughputAbr(safety=0.8)
        # 8 Mbit/s estimate: everything fits -> top rung.
        assert policy.choose(ladder, 10.0, 1_000_000.0, 0) == 2
        # 500 kbit/s budget at safety 0.8 -> only the 250k rung fits.
        assert policy.choose(ladder, 10.0, 62_500.0, 0) == 0

    def test_throughput_cautious_without_estimate(self, ladder):
        assert ThroughputAbr().choose(ladder, 10.0, None, 2) == 0

    def test_buffer_based_maps_levels(self, ladder):
        policy = BufferBasedAbr(reservoir=8.0, cushion=16.0)
        assert policy.choose(ladder, 2.0, None, 0) == 0
        assert policy.choose(ladder, 30.0, None, 0) == 2
        middle = policy.choose(ladder, 16.0, None, 0)
        assert 0 <= middle <= 2

    def test_fixed_rung(self, ladder):
        assert FixedRung(-1).choose(ladder, 0.0, None, 0) == 2
        assert FixedRung(0).choose(ladder, 99.0, None, 2) == 0

    def test_invalid_params(self):
        with pytest.raises(ConfigurationError):
            ThroughputAbr(safety=0.0)
        with pytest.raises(ConfigurationError):
            BufferBasedAbr(cushion=0.0)


class TestSession:
    def test_full_playback(self, ladder):
        session = AbrSession(
            ladder,
            BufferBasedAbr(),
            AbrSessionConfig(bandwidth=kB_per_s(256)),
        )
        metrics = session.run()
        assert metrics.streaming.finished
        assert len(metrics.rungs) == ladder.segment_count
        assert metrics.mean_bitrate > 0

    def test_scarce_bandwidth_degrades_quality_not_playback(
        self, ladder
    ):
        session = AbrSession(
            ladder,
            BufferBasedAbr(),
            AbrSessionConfig(bandwidth=kB_per_s(64)),
        )
        metrics = session.run()
        assert metrics.streaming.finished
        assert metrics.mean_bitrate < max(ladder.bitrates)

    def test_fixed_top_stalls_when_scarce(self, ladder):
        session = AbrSession(
            ladder,
            FixedRung(-1),
            AbrSessionConfig(bandwidth=kB_per_s(64)),
        )
        metrics = session.run()
        assert metrics.streaming.stall_count > 0
        assert metrics.mean_bitrate == max(ladder.bitrates)

    def test_buffer_cap_throttles_fetching(self, ladder):
        config = AbrSessionConfig(
            bandwidth=kB_per_s(1024), max_buffer=8.0
        )
        session = AbrSession(ladder, FixedRung(0), config)

        def check():
            # Buffered playtime never far exceeds the cap.
            level = session._buffer_level()
            assert level <= config.max_buffer + 8.0

        for t in (2.0, 4.0, 8.0, 12.0):
            session.sim.schedule(t, check)
        metrics = session.run()
        assert metrics.streaming.finished

    def test_switches_counted(self, ladder):
        session = AbrSession(
            ladder,
            BufferBasedAbr(reservoir=2.0, cushion=6.0),
            AbrSessionConfig(bandwidth=kB_per_s(128)),
        )
        metrics = session.run()
        assert metrics.switches == sum(
            1
            for a, b in zip(metrics.rungs, metrics.rungs[1:])
            if a != b
        )

    def test_invalid_config(self):
        with pytest.raises(ConfigurationError):
            AbrSessionConfig(bandwidth=0)
        with pytest.raises(ConfigurationError):
            AbrSessionConfig(bandwidth=1.0, max_buffer=0)
