"""Guards the documented public API against drift.

Every name in each package's ``__all__`` must resolve, and the core
entry points used throughout the README/docs must exist with their
documented signatures.
"""

import importlib
import inspect

import pytest

PACKAGES = [
    "repro",
    "repro.video",
    "repro.core",
    "repro.net",
    "repro.p2p",
    "repro.player",
    "repro.cdn",
    "repro.abr",
    "repro.bwest",
    "repro.testbed",
    "repro.experiments",
    "repro.obs",
    "repro.parallel",
    "repro.lint",
]


@pytest.mark.parametrize("package_name", PACKAGES)
def test_all_exports_resolve(package_name):
    package = importlib.import_module(package_name)
    assert hasattr(package, "__all__"), package_name
    for name in package.__all__:
        assert hasattr(package, name), f"{package_name}.{name}"


def test_version_string():
    import repro

    assert repro.__version__.count(".") == 2


def test_eq1_signature():
    from repro import adaptive_pool_size

    params = list(
        inspect.signature(adaptive_pool_size).parameters
    )
    assert params == ["bandwidth", "buffered_playtime", "segment_size"]


def test_swarm_config_defaults_match_paper():
    from repro import SwarmConfig

    config = SwarmConfig(bandwidth=1.0)
    assert config.n_leechers == 19  # 20 nodes with the seeder
    assert config.peer_rtt == pytest.approx(0.05)
    assert config.seeder_rtt == pytest.approx(0.5)
    assert config.path_loss == pytest.approx(0.05)

def test_splicers_are_interchangeable():
    from repro import DurationSplicer, GopSplicer, Splicer

    assert issubclass(GopSplicer, Splicer)
    assert issubclass(DurationSplicer, Splicer)


def test_policies_are_interchangeable():
    from repro import AdaptivePoolPolicy, DownloadPolicy, FixedPoolPolicy

    assert issubclass(AdaptivePoolPolicy, DownloadPolicy)
    assert issubclass(FixedPoolPolicy, DownloadPolicy)


def test_cli_module_importable():
    from repro.cli import build_parser, main

    assert callable(main)
    assert build_parser().prog == "repro"
