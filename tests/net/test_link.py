"""Tests for links and path helpers."""

import pytest

from repro.errors import LinkError
from repro.net.link import Link, path_latency, path_loss_rate


class TestLinkValidation:
    def test_valid(self):
        link = Link("a:up", 128_000, 0.025, 0.02)
        assert link.capacity == 128_000

    def test_zero_capacity_rejected(self):
        with pytest.raises(LinkError):
            Link("x", 0)

    def test_negative_latency_rejected(self):
        with pytest.raises(LinkError):
            Link("x", 1, latency=-0.1)

    def test_loss_of_one_rejected(self):
        with pytest.raises(LinkError):
            Link("x", 1, loss_rate=1.0)

    def test_capacity_mutable(self):
        link = Link("x", 100)
        link.capacity = 200
        assert link.capacity == 200

    def test_capacity_set_to_zero_rejected(self):
        link = Link("x", 100)
        with pytest.raises(LinkError):
            link.capacity = 0

    def test_repr_mentions_name(self):
        assert "x" in repr(Link("x", 100))


class TestPathHelpers:
    def test_path_latency_sums(self):
        links = [Link("a", 1, 0.01), Link("b", 1, 0.02)]
        assert path_latency(links) == pytest.approx(0.03)

    def test_path_loss_compounds(self):
        links = [Link("a", 1, loss_rate=0.1), Link("b", 1, loss_rate=0.1)]
        assert path_loss_rate(links) == pytest.approx(0.19)

    def test_lossless_path(self):
        assert path_loss_rate([Link("a", 1)]) == 0.0

    def test_empty_path(self):
        assert path_latency([]) == 0.0
        assert path_loss_rate([]) == 0.0
