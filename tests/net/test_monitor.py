"""Tests for the link utilization monitor."""

import pytest

from repro.errors import ConfigurationError
from repro.net.engine import Simulator
from repro.net.flownet import FlowNetwork
from repro.net.link import Link
from repro.net.monitor import LinkMonitor


def setup(capacity=1000.0):
    sim = Simulator()
    network = FlowNetwork(sim)
    link = Link("l", capacity)
    return sim, network, link


class TestSampling:
    def test_full_utilization_while_flow_active(self):
        sim, network, link = setup()
        monitor = LinkMonitor(sim, network, [link], period=0.5)
        monitor.start()
        network.start_flow([link], 5000.0)  # 5 s at 1000 B/s
        sim.run(until=4.0)
        report = monitor.utilization(link)
        assert report.mean == pytest.approx(1.0)
        assert report.busy_fraction == pytest.approx(1.0)

    def test_idle_link_reads_zero(self):
        sim, network, link = setup()
        monitor = LinkMonitor(sim, network, [link], period=1.0)
        monitor.start()
        sim.schedule(3.0, lambda: None)
        sim.run(until=3.0)
        report = monitor.utilization(link)
        assert report.mean == 0.0
        assert report.busy_fraction == 0.0

    def test_partial_utilization(self):
        sim, network, link = setup()
        monitor = LinkMonitor(sim, network, [link], period=1.0)
        monitor.start()
        network.start_flow([link], 1e9, rate_limit=250.0)
        sim.run(until=4.0)
        assert monitor.utilization(link).mean == pytest.approx(0.25)

    def test_stop_halts_sampling(self):
        sim, network, link = setup()
        monitor = LinkMonitor(sim, network, [link], period=1.0)
        monitor.start()
        sim.schedule(2.5, monitor.stop)
        sim.schedule(10.0, lambda: None)
        sim.run(until=10.0)
        assert monitor.utilization(link).samples == 2

    def test_start_is_idempotent(self):
        sim, network, link = setup()
        monitor = LinkMonitor(sim, network, [link], period=1.0)
        monitor.start()
        monitor.start()
        sim.schedule(2.0, lambda: None)
        sim.run(until=2.0)
        assert monitor.utilization(link).samples == 2


class TestValidation:
    def test_invalid_period_rejected(self):
        sim, network, link = setup()
        with pytest.raises(ConfigurationError):
            LinkMonitor(sim, network, [link], period=0.0)

    def test_empty_links_rejected(self):
        sim, network, _ = setup()
        with pytest.raises(ConfigurationError):
            LinkMonitor(sim, network, [], period=1.0)

    def test_unknown_link_rejected(self):
        sim, network, link = setup()
        monitor = LinkMonitor(sim, network, [link], period=1.0)
        with pytest.raises(ConfigurationError):
            monitor.utilization(Link("other", 1.0))

    def test_no_samples_rejected(self):
        sim, network, link = setup()
        monitor = LinkMonitor(sim, network, [link], period=1.0)
        with pytest.raises(ConfigurationError):
            monitor.utilization(link)

    def test_report_skips_sampleless_links(self):
        sim, network, link = setup()
        monitor = LinkMonitor(sim, network, [link], period=1.0)
        assert monitor.report() == []
