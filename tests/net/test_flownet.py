"""Tests for the max-min fair flow network."""

import pytest

from repro.errors import NetworkError
from repro.net.engine import Simulator
from repro.net.flownet import FlowNetwork
from repro.net.link import Link


@pytest.fixture()
def net():
    sim = Simulator()
    return sim, FlowNetwork(sim)


class TestBasics:
    def test_single_flow_uses_full_capacity(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        done = []
        network.start_flow([link], 2000.0, on_complete=lambda f: done.append(sim.now))
        sim.run()
        assert done == [pytest.approx(2.0)]

    def test_flow_requires_route(self, net):
        _, network = net
        with pytest.raises(NetworkError):
            network.start_flow([], 100.0)

    def test_flow_requires_positive_size(self, net):
        _, network = net
        with pytest.raises(NetworkError):
            network.start_flow([Link("l", 1)], 0.0)

    def test_invalid_rate_limit_rejected(self, net):
        _, network = net
        with pytest.raises(NetworkError):
            network.start_flow([Link("l", 1)], 1.0, rate_limit=0.0)

    def test_transferred_tracks_progress(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        flow = network.start_flow([link], 2000.0)
        sim.schedule(1.0, lambda: None)
        sim.run(until=1.0)
        network._advance()
        assert flow.transferred == pytest.approx(1000.0)


class TestFairSharing:
    def test_equal_split_on_shared_link(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        ends = {}
        network.start_flow(
            [link], 1000.0, on_complete=lambda f: ends.setdefault("a", sim.now)
        )
        network.start_flow(
            [link], 1000.0, on_complete=lambda f: ends.setdefault("b", sim.now)
        )
        sim.run()
        # Both share 500 B/s until the first finishes; identical sizes
        # finish together at 2 s.
        assert ends["a"] == pytest.approx(2.0)
        assert ends["b"] == pytest.approx(2.0)

    def test_remaining_flow_speeds_up_after_completion(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        ends = {}
        network.start_flow(
            [link], 500.0, on_complete=lambda f: ends.setdefault("small", sim.now)
        )
        network.start_flow(
            [link], 1500.0, on_complete=lambda f: ends.setdefault("big", sim.now)
        )
        sim.run()
        # Share 500 each: small done at 1 s (500 B); big then has 1000 B
        # left at full 1000 B/s -> done at 2 s.
        assert ends["small"] == pytest.approx(1.0)
        assert ends["big"] == pytest.approx(2.0)

    def test_bottleneck_on_second_link(self, net):
        sim, network = net
        fat = Link("fat", 10_000.0)
        thin = Link("thin", 100.0)
        done = []
        network.start_flow(
            [fat, thin], 200.0, on_complete=lambda f: done.append(sim.now)
        )
        sim.run()
        assert done == [pytest.approx(2.0)]

    def test_rate_limit_caps_flow(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        done = []
        network.start_flow(
            [link],
            500.0,
            rate_limit=100.0,
            on_complete=lambda f: done.append(sim.now),
        )
        sim.run()
        assert done == [pytest.approx(5.0)]

    def test_capped_flow_releases_share_to_others(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        ends = {}
        network.start_flow(
            [link],
            100.0,
            rate_limit=100.0,
            on_complete=lambda f: ends.setdefault("capped", sim.now),
        )
        network.start_flow(
            [link],
            900.0,
            on_complete=lambda f: ends.setdefault("free", sim.now),
        )
        sim.run()
        # Capped flow gets 100, free flow gets the remaining 900.
        assert ends["capped"] == pytest.approx(1.0)
        assert ends["free"] == pytest.approx(1.0)

    def test_max_min_three_flows_two_links(self, net):
        sim, network = net
        a = Link("a", 300.0)
        b = Link("b", 900.0)
        rates = {}
        f1 = network.start_flow([a], 1e9)
        f2 = network.start_flow([a, b], 1e9)
        f3 = network.start_flow([b], 1e9)
        # a: f1+f2 share 300 -> 150 each; b: f3 gets 900-150 = 750.
        assert f1.rate == pytest.approx(150.0)
        assert f2.rate == pytest.approx(150.0)
        assert f3.rate == pytest.approx(750.0)


class TestDynamics:
    def test_cancel_stops_flow_without_callback(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        done = []
        flow = network.start_flow(
            [link], 1000.0, on_complete=lambda f: done.append("x")
        )
        network.cancel_flow(flow)
        sim.run()
        assert done == []
        assert not flow.active

    def test_cancel_releases_capacity(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        ends = []
        slow = network.start_flow([link], 10_000.0)
        network.start_flow(
            [link], 1000.0, on_complete=lambda f: ends.append(sim.now)
        )
        sim.schedule(0.5, lambda: network.cancel_flow(slow))
        sim.run()
        # 0.5 s at 500 B/s = 250 B, then 750 B at 1000 B/s.
        assert ends == [pytest.approx(1.25)]

    def test_set_rate_limit_mid_flight(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        ends = []
        flow = network.start_flow(
            [link],
            1000.0,
            rate_limit=100.0,
            on_complete=lambda f: ends.append(sim.now),
        )
        sim.schedule(1.0, lambda: network.set_rate_limit(flow, 900.0))
        sim.run()
        # 100 B in the first second, then 900 B at 900 B/s.
        assert ends == [pytest.approx(2.0)]

    def test_set_capacity_mid_flight(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        ends = []
        network.start_flow(
            [link], 2000.0, on_complete=lambda f: ends.append(sim.now)
        )
        sim.schedule(1.0, lambda: network.set_capacity(link, 500.0))
        sim.run()
        # 1000 B in the first second, then 1000 B at 500 B/s.
        assert ends == [pytest.approx(3.0)]

    def test_window_floor_degrades_goodput(self, net):
        sim, network = net
        link = Link("l", 100.0)
        ends = []
        network.start_flow(
            [link],
            100.0,
            min_efficient_rate=200.0,
            on_complete=lambda f: ends.append(sim.now),
        )
        sim.run()
        # Share 100 < floor 200 -> goodput 100 * 100/200 = 50 B/s.
        assert ends == [pytest.approx(2.0)]

    def test_window_floor_inactive_above_floor(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        ends = []
        network.start_flow(
            [link],
            1000.0,
            min_efficient_rate=200.0,
            on_complete=lambda f: ends.append(sim.now),
        )
        sim.run()
        assert ends == [pytest.approx(1.0)]


class TestAccounting:
    def test_bytes_carried(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        network.start_flow([link], 1500.0)
        sim.run()
        assert network.bytes_carried(link) == pytest.approx(1500.0)

    def test_flows_on_counts_active(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        network.start_flow([link], 1e6)
        network.start_flow([link], 1e6)
        assert network.flows_on(link) == 2

    def test_conservation_across_many_flows(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        total = 0.0
        for size in (100.0, 300.0, 700.0, 1100.0):
            network.start_flow([link], size)
            total += size
        sim.run()
        assert network.bytes_carried(link) == pytest.approx(total)


class TestSameTimestampEdgeCases:
    def test_cancel_scheduled_at_completion_timestamp(self, net):
        # A completes at t=1.0 and a cancel of B lands at the same
        # instant: the cancel must not resurrect or complete B, and the
        # survivor picks up the freed share.
        sim, network = net
        link = Link("l", 1000.0)
        ends = {}
        network.start_flow(
            [link], 500.0, on_complete=lambda f: ends.setdefault("a", sim.now)
        )
        b = network.start_flow(
            [link], 5000.0, on_complete=lambda f: ends.setdefault("b", sim.now)
        )
        sim.schedule(1.0, lambda: network.cancel_flow(b))
        sim.run()
        # A and B share 500 each until t=1.0, when A finishes (500 B)
        # and B is cancelled in the same instant.
        assert ends == {"a": pytest.approx(1.0)}
        assert b.cancelled and not b.active

    def test_completion_callback_cancels_sibling_same_timestamp(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        ends = {}
        b = network.start_flow(
            [link], 5000.0, on_complete=lambda f: ends.setdefault("b", sim.now)
        )
        network.start_flow(
            [link],
            500.0,
            on_complete=lambda f: (
                ends.setdefault("a", sim.now),
                network.cancel_flow(b),
            ),
        )
        c = network.start_flow([link], 1e9)
        sim.run(until=2.0)
        assert ends == {"a": pytest.approx(1.5)}
        assert not b.active
        # With A done and B cancelled, C owns the whole link.
        assert c.rate == pytest.approx(1000.0)

    def test_epsilon_completion_sweeps_other_components(self, net):
        # B sits within the completion epsilon in a different
        # component when A's completion event fires; the sweep must
        # still pick it up at the same instant.
        sim, network = net
        a_link = Link("a", 1000.0)
        b_link = Link("b", 1000.0)
        ends = {}
        network.start_flow(
            [a_link], 1000.0, on_complete=lambda f: ends.setdefault("a", sim.now)
        )
        network.start_flow(
            [b_link],
            1000.0005,
            on_complete=lambda f: ends.setdefault("b", sim.now),
        )
        sim.run()
        assert ends["a"] == pytest.approx(1.0)
        assert ends["b"] == ends["a"]


class TestMinEfficientRateEdgeCases:
    def test_capacity_drop_mid_flow_retriggers_penalty(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        ends = []
        network.start_flow(
            [link],
            2000.0,
            min_efficient_rate=200.0,
            on_complete=lambda f: ends.append(sim.now),
        )
        sim.schedule(1.0, lambda: network.set_capacity(link, 100.0))
        sim.run()
        # 1000 B in the first second above the floor; then the share
        # drops to 100 < 200, goodput 100^2/200 = 50 B/s for 1000 B.
        assert ends == [pytest.approx(21.0)]

    def test_rate_cap_below_floor_is_penalized(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        ends = []
        network.start_flow(
            [link],
            100.0,
            rate_limit=100.0,
            min_efficient_rate=200.0,
            on_complete=lambda f: ends.append(sim.now),
        )
        sim.run()
        # Capped at 100 < floor 200 -> goodput 100^2/200 = 50 B/s.
        assert ends == [pytest.approx(2.0)]

    def test_cap_above_floor_unaffected(self, net):
        sim, network = net
        link = Link("l", 1000.0)
        ends = []
        network.start_flow(
            [link],
            500.0,
            rate_limit=500.0,
            min_efficient_rate=200.0,
            on_complete=lambda f: ends.append(sim.now),
        )
        sim.run()
        assert ends == [pytest.approx(1.0)]


class TestPerNetworkFlowIds:
    def test_ids_start_at_one_per_network(self):
        for _ in range(2):
            sim = Simulator()
            network = FlowNetwork(sim)
            link = Link("l", 1000.0)
            first = network.start_flow([link], 1.0)
            second = network.start_flow([link], 1.0)
            assert first.id == 1
            assert second.id == 2

    def test_concurrent_networks_do_not_share_ids(self):
        sim_a, sim_b = Simulator(), Simulator()
        net_a, net_b = FlowNetwork(sim_a), FlowNetwork(sim_b)
        flow_a = net_a.start_flow([Link("a", 1.0)], 1.0)
        flow_b = net_b.start_flow([Link("b", 1.0)], 1.0)
        assert flow_a.id == flow_b.id == 1


class TestIncrementalRecomputation:
    @staticmethod
    def _instrumented():
        from repro.obs.metrics import MetricsRegistry

        sim = Simulator()
        registry = MetricsRegistry()
        network = FlowNetwork(sim, registry=registry)
        return sim, network, registry

    def test_same_timestamp_starts_coalesce_into_one_solve(self):
        sim, network, registry = self._instrumented()
        link = Link("l", 1000.0)
        flows = [network.start_flow([link], 1e6) for _ in range(4)]
        sim.run(until=0.5)
        assert registry.counter("net.flownet.updates").value == 4
        assert registry.counter("net.flownet.coalesced_updates").value == 3
        assert registry.counter("net.flownet.resolves").value == 1
        assert registry.counter("net.flownet.resolved_flows").value == 4
        assert all(f.rate == pytest.approx(250.0) for f in flows)

    def test_untouched_component_keeps_cached_rates(self):
        sim, network, registry = self._instrumented()
        a = Link("a", 1000.0)
        b = Link("b", 800.0)
        flow_a = network.start_flow([a], 1e9)
        flow_b = network.start_flow([b], 1e9)
        sim.run(until=1.0)
        solves_before = registry.counter("net.flownet.resolves").value
        network.set_rate_limit(flow_a, 300.0)
        sim.run(until=2.0)
        # Only flow_a's single-flow component re-solved.
        assert (
            registry.counter("net.flownet.resolves").value
            == solves_before + 1
        )
        assert flow_a.rate == pytest.approx(300.0)
        assert flow_b.rate == pytest.approx(800.0)

    def test_components_merge_when_flow_bridges_them(self):
        sim, network, _ = self._instrumented()
        a = Link("a", 300.0)
        b = Link("b", 900.0)
        f1 = network.start_flow([a], 1e9)
        f3 = network.start_flow([b], 1e9)
        f2 = network.start_flow([a, b], 1e9)
        # a: f1+f2 share 300 -> 150 each; b: f3 gets 900-150 = 750.
        assert f1.rate == pytest.approx(150.0)
        assert f2.rate == pytest.approx(150.0)
        assert f3.rate == pytest.approx(750.0)

    def test_component_splits_after_bridge_cancel(self):
        sim, network, registry = self._instrumented()
        a = Link("a", 300.0)
        b = Link("b", 900.0)
        f1 = network.start_flow([a], 1e9)
        bridge = network.start_flow([a, b], 1e9)
        f3 = network.start_flow([b], 1e9)
        sim.run(until=1.0)
        network.cancel_flow(bridge)
        sim.run(until=2.0)
        assert f1.rate == pytest.approx(300.0)
        assert f3.rate == pytest.approx(900.0)
        # After the split, churn on one side leaves the other alone.
        solves_before = registry.counter("net.flownet.resolves").value
        network.set_rate_limit(f1, 100.0)
        sim.run(until=3.0)
        assert (
            registry.counter("net.flownet.resolves").value
            == solves_before + 1
        )
        assert registry.counter("net.flownet.resolved_flows").value >= 1
        assert f3.rate == pytest.approx(900.0)

    def test_rates_are_fresh_without_running_the_sim(self):
        sim = Simulator()
        network = FlowNetwork(sim)
        link = Link("l", 1000.0)
        first = network.start_flow([link], 1e6)
        assert first.rate == pytest.approx(1000.0)
        second = network.start_flow([link], 1e6)
        # Reading a rate flushes the deferred re-solve.
        assert first.rate == pytest.approx(500.0)
        assert second.rate == pytest.approx(500.0)
