"""Tests for the discrete-event engine."""

import pytest

from repro.errors import SimulationError
from repro.net.engine import Simulator


class TestScheduling:
    def test_clock_starts_at_zero(self):
        assert Simulator().now == 0.0

    def test_events_fire_in_time_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "late")
        sim.schedule(1.0, fired.append, "early")
        sim.run()
        assert fired == ["early", "late"]

    def test_ties_break_by_scheduling_order(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "first")
        sim.schedule(1.0, fired.append, "second")
        sim.run()
        assert fired == ["first", "second"]

    def test_clock_advances_to_event_time(self):
        sim = Simulator()
        seen = []
        sim.schedule(3.5, lambda: seen.append(sim.now))
        sim.run()
        assert seen == [3.5]
        assert sim.now == 3.5

    def test_negative_delay_rejected(self):
        with pytest.raises(SimulationError):
            Simulator().schedule(-1.0, lambda: None)

    def test_schedule_at_past_rejected(self):
        sim = Simulator()
        sim.schedule(5.0, lambda: None)
        sim.run()
        with pytest.raises(SimulationError):
            sim.schedule_at(1.0, lambda: None)

    def test_events_can_schedule_events(self):
        sim = Simulator()
        fired = []

        def chain(n):
            fired.append(sim.now)
            if n > 0:
                sim.schedule(1.0, chain, n - 1)

        sim.schedule(0.0, chain, 3)
        sim.run()
        assert fired == [0.0, 1.0, 2.0, 3.0]


class TestCancellation:
    def test_cancelled_event_does_not_fire(self):
        sim = Simulator()
        fired = []
        handle = sim.schedule(1.0, fired.append, "x")
        handle.cancel()
        sim.run()
        assert fired == []

    def test_cancel_is_idempotent(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert handle.cancelled

    def test_pending_events_excludes_cancelled(self):
        sim = Simulator()
        keep = sim.schedule(1.0, lambda: None)
        drop = sim.schedule(2.0, lambda: None)
        drop.cancel()
        assert sim.pending_events == 1
        keep.cancel()
        assert sim.pending_events == 0


class TestRunUntil:
    def test_run_until_stops_before_later_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        assert fired == ["a"]
        assert sim.now == 2.0

    def test_event_exactly_at_until_fires(self):
        sim = Simulator()
        fired = []
        sim.schedule(2.0, fired.append, "edge")
        sim.run(until=2.0)
        assert fired == ["edge"]

    def test_resume_after_partial_run(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, fired.append, "a")
        sim.schedule(5.0, fired.append, "b")
        sim.run(until=2.0)
        sim.run()
        assert fired == ["a", "b"]

    def test_reentrant_run_rejected(self):
        sim = Simulator()

        def nested():
            sim.run()

        sim.schedule(1.0, nested)
        with pytest.raises(SimulationError):
            sim.run()

    def test_run_until_idle_raises_on_runaway(self):
        sim = Simulator()

        def forever():
            sim.schedule(1.0, forever)

        sim.schedule(0.0, forever)
        with pytest.raises(SimulationError):
            sim.run_until_idle(max_time=10.0)

    def test_run_until_idle_finishes_quiet_sims(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: None)
        sim.run_until_idle(max_time=10.0)
        assert sim.pending_events == 0


class TestPendingCounter:
    """pending_events is a live counter, not a queue scan."""

    def test_counts_scheduled_events(self):
        sim = Simulator()
        for delay in (1.0, 2.0, 3.0):
            sim.schedule(delay, lambda: None)
        assert sim.pending_events == 3

    def test_cancel_decrements_immediately(self):
        sim = Simulator()
        handles = [sim.schedule(float(i), lambda: None) for i in (1, 2)]
        handles[0].cancel()
        # The cancelled entry still sits in the heap, but the count
        # reflects only live events.
        assert sim.pending_events == 1

    def test_double_cancel_does_not_double_decrement(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        handle.cancel()
        handle.cancel()
        assert sim.pending_events == 1

    def test_cancel_after_firing_is_harmless(self):
        sim = Simulator()
        handle = sim.schedule(1.0, lambda: None)
        sim.schedule(2.0, lambda: None)
        sim.run(until=1.5)
        handle.cancel()
        assert sim.pending_events == 1

    def test_counter_tracks_across_partial_runs(self):
        sim = Simulator()
        for delay in (1.0, 5.0, 9.0):
            sim.schedule(delay, lambda: None)
        sim.run(until=2.0)
        assert sim.pending_events == 2
        sim.run()
        assert sim.pending_events == 0

    def test_counter_matches_queue_scan(self):
        # The counter must agree with the definitionally correct O(n)
        # scan under a mixed schedule/cancel/run workload.
        sim = Simulator()
        handles = [
            sim.schedule(float(i % 7) + 0.5, lambda: None)
            for i in range(40)
        ]
        for handle in handles[::3]:
            handle.cancel()
        sim.run(until=3.0)
        scan = sum(
            1 for event in sim._queue if not event.cancelled
        )
        assert sim.pending_events == scan

    def test_events_cancelled_by_handlers_mid_run(self):
        sim = Simulator()
        fired = []
        victim = sim.schedule(2.0, fired.append, "victim")
        sim.schedule(1.0, victim.cancel)
        sim.schedule(3.0, fired.append, "survivor")
        sim.run()
        assert fired == ["survivor"]
        assert sim.pending_events == 0


class TestTimestampEndBarrier:
    """call_at_timestamp_end defers work to the end of the current instant."""

    def test_barrier_runs_after_all_same_time_events(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, order.append, "a")
        sim.schedule(1.0, lambda: sim.call_at_timestamp_end(
            lambda: order.append("barrier")
        ))
        sim.schedule(1.0, order.append, "b")
        sim.schedule(2.0, order.append, "later")
        sim.run()
        assert order == ["a", "b", "barrier", "later"]

    def test_barrier_runs_before_clock_advances(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.call_at_timestamp_end(
            lambda: seen.append(sim.now)
        ))
        sim.schedule(4.0, lambda: None)
        sim.run()
        assert seen == [1.0]

    def test_barrier_runs_when_queue_drains(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.call_at_timestamp_end(
            lambda: seen.append(sim.now)
        ))
        sim.run()
        assert seen == [1.0]
        assert sim.now == 1.0

    def test_barrier_runs_before_run_until_pads_clock(self):
        sim = Simulator()
        seen = []
        sim.schedule(1.0, lambda: sim.call_at_timestamp_end(
            lambda: seen.append(sim.now)
        ))
        sim.run(until=10.0)
        assert seen == [1.0]
        assert sim.now == 10.0

    def test_barrier_may_schedule_events(self):
        sim = Simulator()
        fired = []
        sim.schedule(1.0, lambda: sim.call_at_timestamp_end(
            lambda: sim.schedule(0.5, lambda: fired.append(sim.now))
        ))
        sim.run()
        assert fired == [1.5]

    def test_barrier_event_at_current_time_reopens_timestamp(self):
        sim = Simulator()
        order = []

        def barrier():
            order.append("barrier")
            sim.schedule(0.0, order.append, "reopened")

        sim.schedule(1.0, lambda: sim.call_at_timestamp_end(barrier))
        sim.schedule(2.0, order.append, "later")
        sim.run()
        assert order == ["barrier", "reopened", "later"]

    def test_barriers_registered_outside_run_fire_before_first_advance(self):
        sim = Simulator()
        order = []
        sim.call_at_timestamp_end(lambda: order.append(("barrier", sim.now)))
        sim.schedule(3.0, lambda: order.append(("event", sim.now)))
        sim.run()
        assert order == [("barrier", 0.0), ("event", 3.0)]

    def test_barrier_callbacks_are_not_events(self):
        sim = Simulator()
        sim.schedule(1.0, lambda: sim.call_at_timestamp_end(lambda: None))
        sim.run()
        assert sim.events_fired == 1

    def test_multiple_barriers_fire_in_registration_order(self):
        sim = Simulator()
        order = []
        sim.schedule(1.0, lambda: [
            sim.call_at_timestamp_end(lambda: order.append("first")),
            sim.call_at_timestamp_end(lambda: order.append("second")),
        ])
        sim.run()
        assert order == ["first", "second"]
