"""Incremental solver vs the brute-force global reference.

:class:`~repro.net.flownet.FlowNetwork` re-solves only dirty
link-connected components and coalesces same-timestamp updates;
:class:`~repro.net.reference.ReferenceFlowNetwork` re-solves the whole
network on every update.  For randomized topologies, caps, and update
schedules (including same-instant bursts), both must agree on every
observable: allocated rates, completion sets and times, and per-link
byte accounting.

Agreement is asserted to a tight relative tolerance rather than
bit-for-bit: progressive filling over a component in isolation can
round differently in the last ULP than the same component interleaved
with unrelated components' filling rounds.  (On the repository's real
workloads the two are bit-identical — the golden-trace digest test
pins that — but randomized cross-component configurations may land on
either side of a rounding.)
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.engine import Simulator
from repro.net.flownet import FlowNetwork
from repro.net.link import Link
from repro.net.reference import ReferenceFlowNetwork

_REL = 1e-9


@st.composite
def update_schedules(draw):
    """Random links plus a timed schedule of network updates.

    Delays are drawn from a small set that includes zero so several
    updates frequently land on the same simulated instant — the
    coalescing path must behave identically to back-to-back global
    re-solves.
    """
    n_links = draw(st.integers(min_value=1, max_value=5))
    capacities = [
        draw(st.floats(min_value=10.0, max_value=10_000.0))
        for _ in range(n_links)
    ]
    n_ops = draw(st.integers(min_value=1, max_value=12))
    ops = []
    time = 0.0
    for _ in range(n_ops):
        time += draw(st.sampled_from([0.0, 0.0, 0.01, 0.5, 1.7]))
        kind = draw(
            st.sampled_from(
                ["start", "start", "start", "cancel", "limit", "capacity"]
            )
        )
        if kind == "start":
            route = draw(
                st.lists(
                    st.integers(min_value=0, max_value=n_links - 1),
                    min_size=1,
                    max_size=n_links,
                    unique=True,
                )
            )
            size = draw(st.floats(min_value=10.0, max_value=5_000.0))
            limit = draw(
                st.one_of(
                    st.none(),
                    st.floats(min_value=1.0, max_value=20_000.0),
                )
            )
            floor = draw(
                st.sampled_from([0.0, 0.0, 50.0, 400.0])
            )
            ops.append((time, "start", (route, size, limit, floor)))
        elif kind == "cancel":
            ops.append((time, "cancel", draw(st.integers(0, 11))))
        elif kind == "limit":
            limit = draw(
                st.one_of(
                    st.none(),
                    st.floats(min_value=1.0, max_value=20_000.0),
                )
            )
            ops.append((time, "limit", (draw(st.integers(0, 11)), limit)))
        else:
            value = draw(st.floats(min_value=10.0, max_value=10_000.0))
            ops.append(
                (time, "capacity", (draw(st.integers(0, n_links - 1)), value))
            )
    return capacities, ops


def _execute(network_cls, capacities, ops):
    """Run one schedule against a network class; return observables."""
    sim = Simulator()
    network = network_cls(sim)
    links = [
        Link(f"l{i}", capacity) for i, capacity in enumerate(capacities)
    ]
    started: list = []
    completions: dict[int, float] = {}

    def apply(kind, payload) -> None:
        if kind == "start":
            route, size, limit, floor = payload
            index = len(started)
            started.append(
                network.start_flow(
                    [links[i] for i in route],
                    size,
                    rate_limit=limit,
                    on_complete=lambda f, i=index: completions.setdefault(
                        i, sim.now
                    ),
                    min_efficient_rate=floor,
                )
            )
        elif kind == "cancel":
            if payload < len(started):
                network.cancel_flow(started[payload])
        elif kind == "limit":
            index, limit = payload
            if index < len(started) and started[index].active:
                network.set_rate_limit(started[index], limit)
        else:
            index, value = payload
            network.set_capacity(links[index], value)

    for time, kind, payload in ops:
        sim.schedule_at(time, apply, kind, payload)
    sim.run()
    rates = [flow.rate if flow.active else None for flow in started]
    carried = [network.bytes_carried(link) for link in links]
    return completions, rates, carried


class TestIncrementalMatchesReference:
    @settings(max_examples=200, deadline=None)
    @given(schedule=update_schedules())
    def test_same_completions_rates_and_accounting(self, schedule):
        capacities, ops = schedule
        ref_done, ref_rates, ref_carried = _execute(
            ReferenceFlowNetwork, capacities, ops
        )
        inc_done, inc_rates, inc_carried = _execute(
            FlowNetwork, capacities, ops
        )

        assert inc_done.keys() == ref_done.keys()
        for index, time in ref_done.items():
            assert inc_done[index] == pytest.approx(time, rel=_REL)
        assert len(inc_rates) == len(ref_rates)
        for incremental, reference in zip(inc_rates, ref_rates):
            if reference is None:
                assert incremental is None
            else:
                assert incremental == pytest.approx(reference, rel=_REL)
        for incremental, reference in zip(inc_carried, ref_carried):
            assert incremental == pytest.approx(
                reference, rel=1e-6, abs=1e-3
            )

    @settings(max_examples=100, deadline=None)
    @given(schedule=update_schedules())
    def test_incremental_solver_is_deterministic(self, schedule):
        capacities, ops = schedule
        first = _execute(FlowNetwork, capacities, ops)
        second = _execute(FlowNetwork, capacities, ops)
        assert first == second


class TestStaticAllocationParity:
    """Pure-allocation cross-check: rates right after a burst of starts."""

    @settings(max_examples=200, deadline=None)
    @given(schedule=update_schedules())
    def test_rates_match_before_any_time_passes(self, schedule):
        capacities, ops = schedule
        starts = [op for op in ops if op[1] == "start"]

        def allocate(network_cls):
            sim = Simulator()
            network = network_cls(sim)
            links = [
                Link(f"l{i}", capacity)
                for i, capacity in enumerate(capacities)
            ]
            flows = [
                network.start_flow(
                    [links[i] for i in route],
                    size,
                    rate_limit=limit,
                    min_efficient_rate=floor,
                )
                for _, _, (route, size, limit, floor) in starts
            ]
            return [flow.rate for flow in flows]

        reference = allocate(ReferenceFlowNetwork)
        incremental = allocate(FlowNetwork)
        for got, want in zip(incremental, reference):
            assert got == pytest.approx(want, rel=_REL)
