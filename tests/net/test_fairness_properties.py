"""Property-based tests of the max-min fair allocation.

For random link/flow configurations, the allocation must be:

* **feasible** — no link carries more than its capacity;
* **cap-respecting** — no flow exceeds its rate limit;
* **non-wasteful (work-conserving)** — every flow is either at its
  cap or crosses at least one saturated link (nobody could be given
  more without taking from someone);
* **deterministic** — re-solving the same configuration gives the
  same rates.
"""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.net.engine import Simulator
from repro.net.flownet import FlowNetwork
from repro.net.link import Link

_EPS = 1e-6


@st.composite
def network_configs(draw):
    """Random links plus random flows over subsets of them."""
    n_links = draw(st.integers(min_value=1, max_value=5))
    capacities = [
        draw(st.floats(min_value=10.0, max_value=10_000.0))
        for _ in range(n_links)
    ]
    n_flows = draw(st.integers(min_value=1, max_value=8))
    flows = []
    for _ in range(n_flows):
        route = draw(
            st.lists(
                st.integers(min_value=0, max_value=n_links - 1),
                min_size=1,
                max_size=n_links,
                unique=True,
            )
        )
        limit = draw(
            st.one_of(
                st.none(),
                st.floats(min_value=1.0, max_value=20_000.0),
            )
        )
        flows.append((route, limit))
    return capacities, flows


def solve(capacities, flows):
    sim = Simulator()
    network = FlowNetwork(sim)
    links = [
        Link(f"l{i}", capacity) for i, capacity in enumerate(capacities)
    ]
    flow_objects = []
    for route_indices, limit in flows:
        flow_objects.append(
            network.start_flow(
                [links[i] for i in route_indices],
                size=1e12,  # effectively infinite: rates at equilibrium
                rate_limit=limit,
            )
        )
    return links, flow_objects


class TestAllocationProperties:
    @settings(max_examples=200, deadline=None)
    @given(config=network_configs())
    def test_feasible(self, config):
        capacities, flows = config
        links, flow_objects = solve(capacities, flows)
        for link in links:
            carried = sum(
                flow.rate
                for flow in flow_objects
                if link in flow.route
            )
            assert carried <= link.capacity * (1 + _EPS)

    @settings(max_examples=200, deadline=None)
    @given(config=network_configs())
    def test_caps_respected(self, config):
        capacities, flows = config
        _, flow_objects = solve(capacities, flows)
        for flow in flow_objects:
            if flow.rate_limit is not None:
                assert flow.rate <= flow.rate_limit * (1 + _EPS)

    @settings(max_examples=200, deadline=None)
    @given(config=network_configs())
    def test_work_conserving(self, config):
        capacities, flows = config
        links, flow_objects = solve(capacities, flows)
        carried = {
            link.name: sum(
                flow.rate
                for flow in flow_objects
                if link in flow.route
            )
            for link in links
        }
        for flow in flow_objects:
            at_cap = (
                flow.rate_limit is not None
                and flow.rate >= flow.rate_limit * (1 - 1e-6)
            )
            on_saturated_link = any(
                carried[link.name] >= link.capacity * (1 - 1e-6)
                for link in flow.route
            )
            assert at_cap or on_saturated_link

    @settings(max_examples=100, deadline=None)
    @given(config=network_configs())
    def test_deterministic(self, config):
        capacities, flows = config
        _, first = solve(capacities, flows)
        _, second = solve(capacities, flows)
        for a, b in zip(first, second):
            assert a.rate == pytest.approx(b.rate)

    @settings(max_examples=100, deadline=None)
    @given(config=network_configs())
    def test_all_flows_get_positive_rate(self, config):
        capacities, flows = config
        _, flow_objects = solve(capacities, flows)
        for flow in flow_objects:
            assert flow.rate > 0
