"""Tests for the star topology."""

import math

import pytest

from repro.errors import ConfigurationError, RoutingError
from repro.net.engine import Simulator
from repro.net.flownet import FlowNetwork
from repro.net.topology import StarTopology, per_link_loss


@pytest.fixture()
def topo():
    topology = StarTopology()
    topology.add_node("a", 128_000.0, latency_to_hub=0.0125, loss_rate=0.02)
    topology.add_node("b", 256_000.0, latency_to_hub=0.0125, loss_rate=0.02)
    return topology


class TestConstruction:
    def test_nodes_registered(self, topo):
        assert len(topo) == 2
        assert "a" in topo
        assert topo.node("a").name == "a"

    def test_duplicate_name_rejected(self, topo):
        with pytest.raises(ConfigurationError):
            topo.add_node("a", 1.0)

    def test_unknown_node_lookup(self, topo):
        with pytest.raises(RoutingError):
            topo.node("zzz")

    def test_node_has_up_and_down_links(self, topo):
        node = topo.node("a")
        assert node.uplink.name == "a:up"
        assert node.downlink.name == "a:down"
        assert node.bandwidth == 128_000.0
        assert node.latency_to_hub == pytest.approx(0.0125)


class TestRouting:
    def test_route_is_uplink_then_downlink(self, topo):
        a, b = topo.node("a"), topo.node("b")
        route = topo.route(a, b)
        assert route == [a.uplink, b.downlink]

    def test_route_to_self_rejected(self, topo):
        a = topo.node("a")
        with pytest.raises(RoutingError):
            topo.route(a, a)

    def test_route_with_foreign_node_rejected(self, topo):
        other = StarTopology()
        foreign = other.add_node("x", 1.0)
        with pytest.raises(RoutingError):
            topo.route(topo.node("a"), foreign)

    def test_one_way_latency(self, topo):
        a, b = topo.node("a"), topo.node("b")
        assert topo.one_way_latency(a, b) == pytest.approx(0.025)


class TestPerLinkLoss:
    def test_compounds_back_to_path_loss(self):
        per_link = per_link_loss(0.05)
        path = 1.0 - (1.0 - per_link) ** 2
        assert path == pytest.approx(0.05)

    def test_paper_value(self):
        assert per_link_loss(0.05) == pytest.approx(
            1.0 - math.sqrt(0.95)
        )

    def test_zero(self):
        assert per_link_loss(0.0) == 0.0

    def test_invalid_rejected(self):
        with pytest.raises(ConfigurationError):
            per_link_loss(1.0)


class TestBandwidthChanges:
    def test_set_node_bandwidth_updates_both_directions(self, topo):
        sim = Simulator()
        network = FlowNetwork(sim)
        node = topo.node("a")
        topo.set_node_bandwidth(network, node, 999_000.0)
        assert node.uplink.capacity == 999_000.0
        assert node.downlink.capacity == 999_000.0

    def test_set_bandwidth_reshapes_active_flows(self, topo):
        sim = Simulator()
        network = FlowNetwork(sim)
        a, b = topo.node("a"), topo.node("b")
        ends = []
        network.start_flow(
            topo.route(a, b), 256_000.0,
            on_complete=lambda f: ends.append(sim.now),
        )
        # a's uplink is the 128 kB/s bottleneck; raise it mid-flight.
        sim.schedule(
            1.0, lambda: topo.set_node_bandwidth(network, a, 256_000.0)
        )
        sim.run()
        # 128 kB in 1 s, then 128 kB at 256 kB/s = 0.5 s.
        assert ends == [pytest.approx(1.5)]
