"""Tests for transport parameterization (TCP vs PPSPP-style UDP)."""

import pytest

from repro.net.engine import Simulator
from repro.net.flownet import FlowNetwork
from repro.net.link import Link
from repro.net.tcp import TcpParams, ppspp_params, start_tcp_transfer


class TestPpsppParams:
    def test_one_rtt_handshake(self):
        params = ppspp_params()
        assert params.handshake_rtts == 1.0

    def test_no_mathis_cap(self):
        params = ppspp_params()
        assert params.mathis_cap(0.05, 0.05) is None

    def test_tcp_still_capped(self):
        assert TcpParams().mathis_cap(0.05, 0.05) is not None

    def test_loss_capped_flag(self):
        assert TcpParams().loss_capped
        assert not ppspp_params().loss_capped


class TestTransportBehaviour:
    def _transfer_time(self, params):
        sim = Simulator()
        network = FlowNetwork(sim)
        # Fat but lossy path: the Mathis ceiling (TCP) binds hard.
        link = Link("l", 10_000_000.0, latency=0.025, loss_rate=0.05)
        done = []
        start_tcp_transfer(
            sim,
            network,
            [link],
            1_000_000.0,
            params=params,
            on_complete=lambda t: done.append(sim.now),
        )
        sim.run()
        return done[0]

    def test_udp_beats_tcp_on_lossy_fat_path(self):
        tcp_time = self._transfer_time(TcpParams())
        udp_time = self._transfer_time(ppspp_params())
        assert udp_time < tcp_time / 3

    def test_no_window_floor_for_udp(self):
        # Many tiny shares: TCP collapses below MSS/RTT, UDP does not.
        def aggregate_time(params, n_flows=8):
            sim = Simulator()
            network = FlowNetwork(sim)
            link = Link("l", 100_000.0, latency=0.025, loss_rate=0.05)
            done = []
            for _ in range(n_flows):
                start_tcp_transfer(
                    sim,
                    network,
                    [link],
                    100_000.0,
                    params=params,
                    on_complete=lambda t: done.append(sim.now),
                )
            sim.run()
            return max(done)

        tcp_time = aggregate_time(TcpParams())
        udp_time = aggregate_time(ppspp_params())
        assert udp_time < tcp_time

    def test_same_behaviour_on_clean_path(self):
        def time_on_clean(params):
            sim = Simulator()
            network = FlowNetwork(sim)
            link = Link("l", 100_000.0, latency=0.01)
            done = []
            start_tcp_transfer(
                sim,
                network,
                [link],
                200_000.0,
                params=params,
                on_complete=lambda t: done.append(sim.now),
            )
            sim.run()
            return done[0]

        tcp_time = time_on_clean(TcpParams())
        udp_time = time_on_clean(ppspp_params())
        # Only the handshake differs without loss.
        assert udp_time == pytest.approx(tcp_time - 0.01, abs=0.02)
