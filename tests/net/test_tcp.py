"""Tests for the analytic TCP model."""

import pytest

from repro.errors import NetworkError
from repro.net.engine import Simulator
from repro.net.flownet import FlowNetwork
from repro.net.link import Link
from repro.net.tcp import TcpParams, start_tcp_transfer


def setup():
    sim = Simulator()
    return sim, FlowNetwork(sim)


class TestTcpParams:
    def test_defaults(self):
        params = TcpParams()
        assert params.mss == 1460
        assert params.initial_window == 10

    def test_mathis_cap_formula(self):
        params = TcpParams()
        cap = params.mathis_cap(rtt=0.05, loss_rate=0.05)
        assert cap == pytest.approx(159_934, rel=0.01)

    def test_mathis_cap_none_when_lossless(self):
        assert TcpParams().mathis_cap(0.05, 0.0) is None

    def test_handshake_delay(self):
        params = TcpParams()
        assert params.handshake_delay(0.1, 0.0) == pytest.approx(0.15)

    def test_handshake_inflated_by_loss(self):
        params = TcpParams()
        assert params.handshake_delay(0.1, 0.5) == pytest.approx(0.30)

    def test_invalid_params_rejected(self):
        with pytest.raises(NetworkError):
            TcpParams(mss=0)
        with pytest.raises(NetworkError):
            TcpParams(initial_window=0)
        with pytest.raises(NetworkError):
            TcpParams(handshake_rtts=-1)


class TestTransferLifecycle:
    def test_completes_and_reports_duration(self):
        sim, network = setup()
        link = Link("l", 100_000.0, latency=0.01)
        done = []
        start_tcp_transfer(
            sim, network, [link], 50_000.0,
            on_complete=lambda t: done.append(t),
        )
        sim.run()
        (transfer,) = done
        assert transfer.completed_at is not None
        assert transfer.duration > 50_000 / 100_000  # handshake adds time

    def test_handshake_delays_first_byte(self):
        sim, network = setup()
        link = Link("l", 1e6, latency=0.05)  # RTT 0.1
        transfer = start_tcp_transfer(sim, network, [link], 1000.0)
        assert transfer.transferred == 0.0
        sim.run(until=0.1)
        assert network.active_flows == []  # still in handshake at 0.1<0.15

    def test_lossless_fast_path_is_near_ideal(self):
        sim, network = setup()
        link = Link("l", 100_000.0, latency=0.005)
        done = []
        start_tcp_transfer(
            sim, network, [link], 200_000.0,
            on_complete=lambda t: done.append(sim.now),
        )
        sim.run()
        ideal = 200_000 / 100_000
        assert done[0] == pytest.approx(ideal, rel=0.1)

    def test_mathis_cap_limits_lossy_transfer(self):
        sim, network = setup()
        # Fat link, lossy path: Mathis at RTT 0.1, p ~0.05 is ~80 kB/s.
        link = Link("l", 10_000_000.0, latency=0.05, loss_rate=0.05)
        done = []
        start_tcp_transfer(
            sim, network, [link], 800_000.0,
            on_complete=lambda t: done.append(sim.now),
        )
        sim.run()
        assert done[0] > 8.0  # never faster than the Mathis bound

    def test_slow_start_ramp_visible_on_fat_lossless_link(self):
        sim, network = setup()
        link = Link("l", 10_000_000.0, latency=0.05)  # RTT 0.1
        done = []
        start_tcp_transfer(
            sim, network, [link], 1_000_000.0,
            on_complete=lambda t: done.append(sim.now),
        )
        sim.run()
        ideal = 1_000_000 / 10_000_000
        assert done[0] > ideal + 0.15  # handshake + several ramp RTTs

    def test_cancel_before_handshake(self):
        sim, network = setup()
        link = Link("l", 1e6, latency=0.05)
        done = []
        transfer = start_tcp_transfer(
            sim, network, [link], 1000.0,
            on_complete=lambda t: done.append(t),
        )
        transfer.cancel()
        sim.run()
        assert done == []
        assert transfer.cancelled
        assert not transfer.active

    def test_cancel_mid_transfer(self):
        sim, network = setup()
        link = Link("l", 1000.0, latency=0.001)
        done = []
        transfer = start_tcp_transfer(
            sim, network, [link], 100_000.0,
            on_complete=lambda t: done.append(t),
        )
        sim.schedule(5.0, transfer.cancel)
        sim.run()
        assert done == []
        assert network.active_flows == []

    def test_empty_route_rejected(self):
        sim, network = setup()
        with pytest.raises(NetworkError):
            start_tcp_transfer(sim, network, [], 1000.0)

    def test_non_positive_size_rejected(self):
        sim, network = setup()
        with pytest.raises(NetworkError):
            start_tcp_transfer(sim, network, [Link("l", 1)], 0.0)

    def test_two_transfers_share_and_finish(self):
        sim, network = setup()
        link = Link("l", 100_000.0, latency=0.005)
        ends = []
        for _ in range(2):
            start_tcp_transfer(
                sim, network, [link], 100_000.0,
                on_complete=lambda t: ends.append(sim.now),
            )
        sim.run()
        assert len(ends) == 2
        assert ends[1] == pytest.approx(2.0, rel=0.1)

    def test_rtt_derived_from_route(self):
        sim, network = setup()
        a = Link("a", 1e6, latency=0.01)
        b = Link("b", 1e6, latency=0.015)
        transfer = start_tcp_transfer(sim, network, [a, b], 1000.0)
        assert transfer.rtt == pytest.approx(0.05)
        sim.run()


class TestBottleneckCache:
    def test_route_accepts_tuple_without_copy(self):
        sim, network = setup()
        links = (Link("a", 1e6, latency=0.01), Link("b", 1e6, latency=0.02))
        transfer = start_tcp_transfer(sim, network, links, 10_000.0)
        assert transfer.rtt == pytest.approx(0.06)

    def test_bottleneck_cached_until_capacity_changes(self):
        sim, network = setup()
        fat = Link("fat", 1_000_000.0, latency=0.01)
        thin = Link("thin", 200_000.0, latency=0.01)
        transfer = start_tcp_transfer(sim, network, [fat, thin], 1e9)
        assert transfer._path_bottleneck() == pytest.approx(200_000.0)
        # Mutating capacity behind the network's back is NOT seen ...
        thin.capacity = 50_000.0
        assert transfer._path_bottleneck() == pytest.approx(200_000.0)
        # ... until set_capacity bumps the generation counter.
        network.set_capacity(thin, 50_000.0)
        assert transfer._path_bottleneck() == pytest.approx(50_000.0)
        transfer.cancel()

    def test_window_growth_tracks_capacity_drop(self):
        sim, network = setup()
        link = Link("l", 1_000_000.0, latency=0.01, loss_rate=0.0)
        done = []
        transfer = start_tcp_transfer(
            sim, network, [link], 5_000_000.0,
            on_complete=lambda t: done.append(t),
        )
        sim.schedule(0.5, lambda: network.set_capacity(link, 100_000.0))
        sim.run()
        assert done == [transfer]
        # The ramp re-read the bottleneck after the drop, so the window
        # cap was lifted once it outgrew the *new* path, and the
        # transfer finished at the reduced capacity.
        assert transfer.duration > 5_000_000.0 / 1_000_000.0
