"""Golden-trace guard for the simulation engine's event ordering.

The engine's hot loop is performance-tuned (live-event counter,
hoisted attribute lookups, direct callback dispatch); this test pins
its observable behaviour to a fixture recorded before the tuning: the
exact sequence of traced events — times, payloads and tie-breaks —
hashed over the run of a representative swarm.  Any engine change that
reorders, drops, or re-times a single event changes the digest.

``wall_seconds`` (wall-clock, non-deterministic) is excluded from the
hash; everything else in every event participates.
"""

from __future__ import annotations

import hashlib
import json
from pathlib import Path

from repro.core.splicer import DurationSplicer
from repro.obs.context import Observability
from repro.p2p.swarm import Swarm, SwarmConfig
from repro.units import kB_per_s
from repro.video.encoder import encode_paper_video

GOLDEN_PATH = Path(__file__).parent / "data" / "golden_trace.json"


def _traced_run():
    video = encode_paper_video(seed=1, duration=24.0)
    splice = DurationSplicer(4.0).splice(video)
    obs = Observability.tracing()
    config = SwarmConfig(
        bandwidth=kB_per_s(256.0),
        seeder_bandwidth=kB_per_s(2048.0),
        n_leechers=5,
        seed=7,
    )
    swarm = Swarm(splice, config, obs=obs)
    swarm.run()
    return swarm, obs


def _digest(events) -> str:
    digest = hashlib.sha256()
    for event in events:
        record = event.to_dict()
        record.pop("wall_seconds", None)
        digest.update(
            json.dumps(record, sort_keys=True).encode()
        )
        digest.update(b"\n")
    return digest.hexdigest()


def test_event_stream_matches_golden_trace():
    golden = json.loads(GOLDEN_PATH.read_text())
    swarm, obs = _traced_run()
    events = obs.events()
    assert len(events) == golden["events"]
    assert swarm.sim.events_fired == golden["events_fired"]
    assert swarm.sim.now == golden["end_time"]
    assert _digest(events) == golden["sha256"]


def test_traced_run_is_self_consistent():
    # Two runs in one process must agree with each other too (guards
    # the fixture against becoming stale silently if regenerated).
    _, first = _traced_run()
    _, second = _traced_run()
    assert _digest(first.events()) == _digest(second.events())
