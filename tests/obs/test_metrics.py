"""Metrics primitives: counters, gauges, the sim-time-weighted
histogram, and the registry's name bookkeeping."""

from __future__ import annotations

import pytest

from repro.errors import TraceError
from repro.obs import MetricsRegistry, TimeWeightedHistogram


class TestCounter:
    def test_accumulates(self):
        registry = MetricsRegistry()
        counter = registry.counter("x")
        counter.inc()
        counter.inc(2.5)
        assert counter.value == 3.5

    def test_rejects_negative(self):
        counter = MetricsRegistry().counter("x")
        with pytest.raises(TraceError):
            counter.inc(-1)

    def test_get_or_create_returns_same_object(self):
        registry = MetricsRegistry()
        assert registry.counter("x") is registry.counter("x")


class TestGauge:
    def test_set_and_add(self):
        gauge = MetricsRegistry().gauge("g")
        gauge.set(5.0)
        gauge.add(-2.0)
        assert gauge.value == 3.0


class TestTimeWeightedHistogram:
    def test_weights_by_holding_time(self):
        """A pool at k=4 for 60 s and k=1 for 2 s must average near 4,
        not at the per-decision mean of 2.5."""
        histogram = TimeWeightedHistogram("pool")
        histogram.observe(0.0, 4.0)
        histogram.observe(60.0, 1.0)
        histogram.finalize(62.0)
        summary = histogram.summary()
        assert summary.total_weight == pytest.approx(62.0)
        assert summary.mean == pytest.approx(
            (4.0 * 60.0 + 1.0 * 2.0) / 62.0
        )
        assert summary.minimum == 1.0
        assert summary.maximum == 4.0

    def test_independent_keys_accumulate_peer_seconds(self):
        histogram = TimeWeightedHistogram("pool")
        histogram.observe(0.0, 2.0, key="peer-1")
        histogram.observe(0.0, 2.0, key="peer-2")
        histogram.finalize(10.0)
        # Two peers at the same value: 20 peer-seconds, not 10.
        assert histogram.weights() == {2.0: 20.0}

    def test_time_regression_rejected(self):
        histogram = TimeWeightedHistogram("pool")
        histogram.observe(5.0, 1.0)
        with pytest.raises(TraceError):
            histogram.observe(4.0, 2.0)

    def test_finalize_resets_keys_for_next_run(self):
        """One histogram may span several runs whose sim clocks each
        restart at zero (seed-averaged experiment cells)."""
        histogram = TimeWeightedHistogram("pool")
        histogram.observe(0.0, 3.0)
        histogram.finalize(10.0)
        # Next run: the clock is back at zero; no regression error.
        histogram.observe(0.0, 5.0)
        histogram.finalize(10.0)
        assert histogram.weights() == {3.0: 10.0, 5.0: 10.0}

    def test_empty_summary_raises(self):
        with pytest.raises(TraceError):
            TimeWeightedHistogram("empty").summary()

    def test_zero_length_interval_carries_no_weight(self):
        histogram = TimeWeightedHistogram("pool")
        histogram.observe(1.0, 3.0)
        histogram.observe(1.0, 4.0)  # instantaneous switch
        histogram.finalize(2.0)
        assert histogram.weights() == {4.0: 1.0}


class TestTimeseries:
    def test_samples_in_order(self):
        series = MetricsRegistry().timeseries("ts")
        series.sample(0.0, 1.0)
        series.sample(1.0, 0.5)
        assert series.values() == [1.0, 0.5]
        assert len(series) == 2


class TestRegistry:
    def test_name_collision_across_kinds(self):
        registry = MetricsRegistry()
        registry.counter("x")
        with pytest.raises(TraceError):
            registry.gauge("x")
        with pytest.raises(TraceError):
            registry.histogram("x")
        with pytest.raises(TraceError):
            registry.timeseries("x")

    def test_len_counts_all_kinds(self):
        registry = MetricsRegistry()
        registry.counter("a")
        registry.gauge("b")
        registry.histogram("c")
        registry.timeseries("d")
        assert len(registry) == 4

    def test_views_are_copies(self):
        registry = MetricsRegistry()
        registry.counter("a")
        view = registry.counters()
        view.clear()
        assert registry.counters() == {"a": registry.counter("a")}
