"""Tracer behavior: the disabled fast path, filtering, the ring
buffer, and the guarantee that tracing never changes simulation
results."""

from __future__ import annotations

import time

import pytest

from repro.core.splicer import DurationSplicer
from repro.errors import TraceError
from repro.obs import (
    NULL_TRACER,
    EventTracer,
    NullTracer,
    Observability,
    PeerJoined,
    SelectionMade,
    StallStarted,
)
from repro.p2p.swarm import Swarm, SwarmConfig


class TestNullTracer:
    def test_disabled_and_empty(self):
        assert NULL_TRACER.enabled is False
        assert NULL_TRACER.events() == []
        assert len(NULL_TRACER) == 0

    def test_emit_discards(self):
        tracer = NullTracer()
        tracer.emit(PeerJoined(time=1.0, peer="p"))
        assert tracer.events() == []


class TestEventTracer:
    def test_records_in_order(self):
        tracer = EventTracer()
        first = PeerJoined(time=1.0, peer="a")
        second = PeerJoined(time=2.0, peer="b")
        tracer.emit(first)
        tracer.emit(second)
        assert tracer.events() == [first, second]
        assert list(tracer) == [first, second]
        assert len(tracer) == 2

    def test_ring_buffer_drops_oldest(self):
        tracer = EventTracer(capacity=2)
        events = [PeerJoined(time=float(i), peer=f"p{i}") for i in range(4)]
        for event in events:
            tracer.emit(event)
        assert tracer.events() == events[-2:]
        assert tracer.capacity == 2

    def test_capacity_must_be_positive(self):
        with pytest.raises(TraceError):
            EventTracer(capacity=0)

    def test_category_filter(self):
        tracer = EventTracer(categories={"swarm"})
        tracer.emit(PeerJoined(time=0.0, peer="p"))
        tracer.emit(StallStarted(time=1.0, peer="p", segment=0))
        assert [e.name for e in tracer.events()] == ["PeerJoined"]
        assert tracer.dropped == 1

    def test_severity_filter(self):
        tracer = EventTracer(min_severity="warning")
        tracer.emit(
            SelectionMade(
                time=0.0, peer="p", selector="s", head=(), candidates=0
            )
        )  # debug
        tracer.emit(PeerJoined(time=0.0, peer="p"))  # info
        tracer.emit(StallStarted(time=1.0, peer="p", segment=0))  # warning
        assert [e.name for e in tracer.events()] == ["StallStarted"]
        assert tracer.dropped == 2

    def test_unknown_severity_rejected(self):
        with pytest.raises(TraceError):
            EventTracer(min_severity="loud")

    def test_clear(self):
        tracer = EventTracer(categories={"swarm"})
        tracer.emit(PeerJoined(time=0.0, peer="p"))
        tracer.emit(StallStarted(time=1.0, peer="p", segment=0))
        tracer.clear()
        assert tracer.events() == []
        assert tracer.dropped == 0


def _run_swarm(video, obs=None):
    splice = DurationSplicer(4.0).splice(video)
    config = SwarmConfig(
        bandwidth=256_000.0,
        seeder_bandwidth=1_024_000.0,
        n_leechers=4,
        seed=7,
        max_time=600.0,
    )
    return Swarm(splice, config, obs=obs).run()


class TestTracingOverhead:
    def test_tracing_does_not_change_results(self, short_video):
        """The tracer observes; it must never perturb the simulation."""
        plain = _run_swarm(short_video)
        traced = _run_swarm(
            short_video, obs=Observability.tracing(profile=True)
        )
        assert plain.end_time == traced.end_time
        assert plain.control_messages == traced.control_messages
        assert plain.seeder_bytes_uploaded == traced.seeder_bytes_uploaded
        for name, metrics in plain.metrics.items():
            other = traced.metrics[name]
            assert metrics.stall_count == other.stall_count
            assert metrics.startup_time == other.startup_time
            assert (
                metrics.total_stall_duration == other.total_stall_duration
            )

    def test_disabled_tracer_overhead_smoke(self, short_video):
        """The default path must not be grossly slower than no obs at
        all — it only adds `tracer.enabled` attribute checks.  The
        bound is deliberately loose (wall time on shared CI)."""
        started = time.perf_counter()
        _run_swarm(short_video)
        baseline = time.perf_counter() - started

        started = time.perf_counter()
        _run_swarm(short_video, obs=Observability.metrics_only())
        with_obs = time.perf_counter() - started

        assert with_obs < 10 * baseline + 0.5
