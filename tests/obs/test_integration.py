"""End-to-end observability: forced stalls, layer coverage, and the
trace-vs-SwarmResult cross-check behind ``repro trace``."""

from __future__ import annotations

import pytest

from repro.core.splicer import DurationSplicer
from repro.net.engine import Simulator
from repro.obs import (
    EventTracer,
    Observability,
    dump_jsonl,
    load_jsonl,
    summarize_trace,
)
from repro.p2p.swarm import Swarm, SwarmConfig
from repro.player.player import Player


class TestForcedStall:
    def test_stall_shows_up_as_paired_events(self):
        """Delay one segment on purpose; the trace must show
        StallStarted/StallEnded at exactly the stall's sim times."""
        sim = Simulator()
        tracer = EventTracer()
        player = Player(
            sim, [1.0, 1.0, 1.0], tracer=tracer, peer="peer-1"
        )
        player.segment_available(0)  # playback starts at t=0
        sim.schedule(2.5, player.segment_available, 1)  # late on purpose
        sim.schedule(2.5, player.segment_available, 2)
        sim.run()

        started = [e for e in tracer if e.name == "StallStarted"]
        ended = [e for e in tracer if e.name == "StallEnded"]
        assert len(started) == 1
        assert len(ended) == 1
        assert started[0].peer == ended[0].peer == "peer-1"
        assert started[0].segment == ended[0].segment == 1

        # Timestamps match the player's own metrics exactly.
        stall = player.metrics.stalls[0]
        assert started[0].time == stall.start == 1.0
        assert ended[0].time == stall.end == 2.5
        assert ended[0].duration == stall.duration == pytest.approx(1.5)

    def test_smooth_playback_emits_no_stall_events(self):
        sim = Simulator()
        tracer = EventTracer()
        player = Player(sim, [1.0, 1.0], tracer=tracer, peer="p")
        player.segment_available(0)
        player.segment_available(1)
        sim.run()
        names = {e.name for e in tracer}
        assert "StallStarted" not in names
        assert "StallEnded" not in names
        assert "PlaybackFinished" in names


def _traced_run(video, **overrides):
    splice = DurationSplicer(4.0).splice(video)
    defaults = dict(
        bandwidth=96_000.0,  # scarce on purpose: stalls guaranteed
        seeder_bandwidth=384_000.0,
        n_leechers=4,
        seed=7,
        max_time=600.0,
    )
    defaults.update(overrides)
    obs = Observability.tracing(profile=True)
    result = Swarm(splice, SwarmConfig(**defaults), obs=obs).run()
    return obs, result


class TestSwarmTrace:
    def test_events_cover_at_least_four_layers(self, short_video):
        obs, _ = _traced_run(short_video)
        layers = {event.category for event in obs.events()}
        assert {"engine", "tcp", "leecher", "player"} <= layers

    def test_summary_matches_swarm_result_exactly(self, short_video):
        obs, result = _traced_run(short_video)
        summaries = summarize_trace(obs.events())
        assert set(summaries) >= set(result.metrics)
        for name, metrics in result.metrics.items():
            summary = summaries[name]
            assert summary.stall_count == metrics.stall_count
            assert (
                summary.total_stall_duration
                == metrics.total_stall_duration
            )
            assert summary.startup_time == metrics.startup_time
            assert summary.finished == metrics.finished

    def test_stall_events_mirror_streaming_metrics(self, short_video):
        obs, result = _traced_run(short_video)
        assert any(
            m.stall_count > 0 for m in result.metrics.values()
        ), "scenario must force at least one stall"
        by_peer: dict[str, list] = {}
        for event in obs.events():
            if event.name in ("StallStarted", "StallEnded"):
                by_peer.setdefault(event.peer, []).append(event)
        for name, metrics in result.metrics.items():
            events = by_peer.get(name, [])
            completed = [
                (s, e)
                for s, e in zip(events[0::2], events[1::2])
                if s.name == "StallStarted" and e.name == "StallEnded"
            ]
            assert len(completed) >= metrics.stall_count
            for (started, ended), stall in zip(
                completed, metrics.stalls
            ):
                assert started.time == stall.start
                assert ended.time == stall.end

    def test_round_trip_preserves_swarm_trace(self, short_video, tmp_path):
        obs, _ = _traced_run(short_video)
        path = tmp_path / "swarm.jsonl"
        dump_jsonl(obs.events(), str(path))
        assert load_jsonl(str(path)) == obs.events()

    def test_engine_profile_accounts_for_all_events(self, short_video):
        obs, _ = _traced_run(short_video)
        assert obs.profile is not None
        completed = [
            e for e in obs.events() if e.name == "SimulationCompleted"
        ]
        assert len(completed) == 1
        assert obs.profile.events_fired == completed[0].events_fired
        assert obs.profile.total_wall_seconds > 0.0

    def test_metrics_registry_is_populated(self, short_video):
        obs, result = _traced_run(short_video)
        counters = obs.registry.counters()
        assert counters["swarm.joins"].value == 4
        assert counters["p2p.segments_received"].value > 0
        assert counters["player.stalls"].value == sum(
            m.stall_count for m in result.metrics.values()
        )
        gauges = obs.registry.gauges()
        assert gauges["swarm.end_time"].value == result.end_time
        assert (
            gauges["swarm.seeder_bytes_uploaded"].value
            == result.seeder_bytes_uploaded
        )
        pool = obs.registry.histograms()["p2p.pool_size"].summary()
        assert pool.minimum >= 1.0
        assert pool.total_weight > 0.0
