"""The diagnosis subsystem: timelines, attribution, rollups, CLI."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.cli import main
from repro.core.splicer import DurationSplicer
from repro.experiments.config import ExperimentConfig
from repro.obs import (
    STALL_CAUSES,
    Observability,
    PeerDeparted,
    PeerJoined,
    PieceReceived,
    PlaybackStarted,
    PoolResized,
    RequestTimedOut,
    SegmentRequested,
    SimulationStarted,
    StallEnded,
    StallStarted,
    TransferStarted,
    analyze_events,
    analyze_observability,
    attribute_stalls,
    build_timelines,
    cause_histogram,
    dump_jsonl,
    render_analysis,
    render_gantt,
)
from repro.p2p.swarm import Swarm, SwarmConfig
from repro.parallel import SplicerSpec, SweepExecutor, cell_for
from repro.units import kB_per_s


def _stream(video, capacity=None, n_leechers=4, bandwidth_kb=192.0):
    """One traced swarm run over ``video``; returns (result, obs)."""
    splice = DurationSplicer(4.0).splice(video)
    obs = Observability.tracing(capacity=capacity)
    config = SwarmConfig(
        bandwidth=kB_per_s(bandwidth_kb),
        seeder_bandwidth=kB_per_s(8 * bandwidth_kb),
        n_leechers=n_leechers,
        seed=7,
    )
    result = Swarm(splice, config, obs=obs).run()
    return result, obs


# -- timeline reconstruction -------------------------------------------


class TestTimelines:
    def test_real_run_reconstructs_cleanly(self, short_video):
        result, obs = _stream(short_video)
        timelines = build_timelines(obs.events())
        assert not timelines.truncated
        assert not timelines.violations
        assert set(timelines.timelines) == set(result.metrics)
        for name, line in timelines.timelines.items():
            metrics = result.metrics[name]
            complete = [s for s in line.stalls if s.complete]
            assert len(complete) == metrics.stall_count

    def test_fetch_lifecycle_links_request_to_receipt(self, short_video):
        _, obs = _stream(short_video)
        timelines = build_timelines(obs.events())
        fetches = [
            f
            for line in timelines.timelines.values()
            for f in line.fetches
            if not f.pending
        ]
        assert fetches
        for fetch in fetches:
            if fetch.requested_at is not None:
                assert fetch.received_at >= fetch.requested_at
                assert fetch.expected_size > 0  # enriched events
            assert fetch.size is not None

    def test_post_departure_event_is_a_violation_not_a_crash(self):
        events = [
            SimulationStarted(time=0.0, pending=1),
            PeerJoined(time=0.0, peer="p"),
            PeerDeparted(time=5.0, peer="p", downloads_cancelled=0),
            PieceReceived(
                time=9.0, peer="p", segment=1, source="s",
                size=10.0, wait=1.0,
            ),
        ]
        timelines = build_timelines(events)
        rules = [v.rule for v in timelines.violations]
        assert "post-departure" in rules

    def test_unmatched_stall_end_is_reported_not_raised(self):
        events = [
            SimulationStarted(time=0.0, pending=1),
            PeerJoined(time=0.0, peer="p"),
            StallEnded(time=4.0, peer="p", segment=2, duration=1.0),
        ]
        timelines = build_timelines(events)
        rules = [v.rule for v in timelines.violations]
        assert "stall-end-unmatched" in rules
        spans = timelines.timelines["p"].stalls
        assert len(spans) == 1 and not spans[0].complete

    def test_time_going_backwards_is_a_violation(self):
        events = [
            SimulationStarted(time=5.0, pending=1),
            PeerJoined(time=1.0, peer="p"),
        ]
        timelines = build_timelines(events)
        assert any(
            v.rule == "time-order" for v in timelines.violations
        )


# -- ring-buffer wraparound (satellite: truncation, never a crash) -----


class TestTruncation:
    def test_capacity_bounded_trace_is_flagged_truncated(
        self, short_video
    ):
        result, obs = _stream(short_video, capacity=60)
        assert obs.tracer.evicted > 0
        analysis = analyze_observability(obs)
        assert analysis.truncated
        assert any("truncated" in note for note in analysis.notes)

    def test_truncated_trace_never_raises_and_attributes_fully(
        self, short_video
    ):
        # Sweep capacities so the buffer cuts the stream at many
        # different points; none may crash and every completed stall
        # still gets exactly one documented cause.
        for capacity in (5, 17, 60, 200):
            _, obs = _stream(short_video, capacity=capacity)
            analysis = analyze_observability(obs)
            assert analysis.truncated == (obs.tracer.evicted > 0)
            for attribution in analysis.attributions:
                assert attribution.cause in STALL_CAUSES
            render_analysis(analysis)  # must not raise either

    def test_missing_simulation_started_implies_truncated(self):
        events = [
            PeerJoined(time=1.0, peer="p"),
            StallEnded(time=4.0, peer="p", segment=2, duration=1.0),
        ]
        timelines = build_timelines(events)
        assert timelines.truncated
        # Unmatched StallEnded on a truncated trace is expected, not
        # an invariant violation.
        assert not any(
            v.rule == "stall-end-unmatched"
            for v in timelines.violations
        )


# -- attribution rules -------------------------------------------------


def _session_prefix(peer="p"):
    return [
        SimulationStarted(time=0.0, pending=1),
        PeerJoined(time=0.0, peer=peer),
        PlaybackStarted(time=1.0, peer=peer, startup_time=1.0),
    ]


class TestCauses:
    def _one_cause(self, events):
        attributions = attribute_stalls(build_timelines(events))
        assert len(attributions) == 1
        return attributions[0]

    def test_churn_loss_on_request_timeout(self):
        events = _session_prefix() + [
            SegmentRequested(
                time=2.0, peer="p", segment=3, source="q",
                urgent=True, expected_size=100.0,
            ),
            StallStarted(time=4.0, peer="p", segment=3,
                         expected_size=100.0),
            RequestTimedOut(
                time=5.0, peer="p", segment=3, source="q",
                retry_source="r",
            ),
            StallEnded(time=8.0, peer="p", segment=3, duration=4.0,
                       expected_size=100.0),
        ]
        verdict = self._one_cause(events)
        assert verdict.cause == "churn-loss"
        assert verdict.event_ids

    def test_churn_loss_on_source_departure(self):
        events = _session_prefix() + [
            PeerJoined(time=0.0, peer="q"),
            SegmentRequested(
                time=2.0, peer="p", segment=3, source="q",
                urgent=True, expected_size=100.0,
            ),
            StallStarted(time=4.0, peer="p", segment=3),
            PeerDeparted(time=5.0, peer="q", downloads_cancelled=1),
            StallEnded(time=8.0, peer="p", segment=3, duration=4.0),
        ]
        assert self._one_cause(events).cause == "churn-loss"

    def test_oversized_segment_when_w_exceeds_bt(self):
        events = _session_prefix() + [
            PoolResized(
                time=1.5, peer="p", size=2,
                buffered_playtime=2.0, bandwidth=100.0,
            ),
            SegmentRequested(
                time=2.0, peer="p", segment=3, source="q",
                urgent=True, expected_size=5000.0,  # W=5000 > B*T=200
            ),
            StallStarted(time=4.0, peer="p", segment=3,
                         expected_size=5000.0),
            StallEnded(time=8.0, peer="p", segment=3, duration=4.0,
                       expected_size=5000.0),
        ]
        verdict = self._one_cause(events)
        assert verdict.cause == "oversized-segment"
        assert "Section IV" in " ".join(verdict.evidence)

    def test_pool_undersubscription_when_requested_after_stall(self):
        events = _session_prefix() + [
            StallStarted(time=4.0, peer="p", segment=3),
            SegmentRequested(
                time=5.0, peer="p", segment=3, source="q",
                urgent=True, expected_size=100.0,
            ),
            StallEnded(time=8.0, peer="p", segment=3, duration=4.0),
        ]
        assert (
            self._one_cause(events).cause == "pool-undersubscription"
        )

    def test_seeder_bottleneck_on_concurrent_fanout(self):
        events = _session_prefix() + [
            SegmentRequested(
                time=2.0, peer="p", segment=3, source="seeder",
                urgent=True, expected_size=100.0,
            ),
            StallStarted(time=4.0, peer="p", segment=3),
        ]
        for i in range(5):
            events.append(
                TransferStarted(
                    time=3.0,
                    label=f"seeder->peer-{i}#{i}",
                    size=100.0, rtt=0.05, loss_rate=0.0,
                )
            )
        events.append(
            StallEnded(time=8.0, peer="p", segment=3, duration=4.0)
        )
        verdict = self._one_cause(events)
        assert verdict.cause == "seeder-bottleneck"
        assert verdict.blocking_source == "seeder"

    def test_connection_overhead_when_setup_dominates(self):
        events = _session_prefix() + [
            SegmentRequested(
                time=2.0, peer="p", segment=3, source="q",
                urgent=True, expected_size=100.0,
            ),
            StallStarted(time=4.0, peer="p", segment=3),
            TransferStarted(
                time=7.0, label="q->p#3", size=100.0,
                rtt=0.5, loss_rate=0.0,
            ),  # 5s of setup...
            PieceReceived(
                time=8.0, peer="p", segment=3, source="q",
                size=100.0, wait=6.0,
            ),  # ...1s of data
            StallEnded(time=8.0, peer="p", segment=3, duration=4.0),
        ]
        assert self._one_cause(events).cause == "connection-overhead"

    def test_startup_fallback_when_nothing_matches(self):
        events = _session_prefix() + [
            StallStarted(time=4.0, peer="p", segment=3),
            StallEnded(time=8.0, peer="p", segment=3, duration=4.0),
        ]
        assert self._one_cause(events).cause == "startup"

    def test_histogram_has_stable_shape_and_sums(self):
        events = _session_prefix() + [
            StallStarted(time=4.0, peer="p", segment=3),
            StallEnded(time=8.0, peer="p", segment=3, duration=4.0),
        ]
        histogram = cause_histogram(
            attribute_stalls(build_timelines(events))
        )
        assert tuple(histogram) == STALL_CAUSES
        assert sum(histogram.values()) == 1


# -- the property the ISSUE pins (hypothesis) --------------------------


class TestAttributionProperties:
    @settings(max_examples=4, deadline=None)
    @given(
        seed=st.sampled_from((7, 17, 27, 42)),
        bandwidth_kb=st.sampled_from((128.0, 256.0, 512.0)),
    )
    def test_every_stall_gets_exactly_one_cause_summing_to_metrics(
        self, short_video, seed, bandwidth_kb
    ):
        splice = DurationSplicer(4.0).splice(short_video)
        obs = Observability.tracing()
        config = SwarmConfig(
            bandwidth=kB_per_s(bandwidth_kb),
            seeder_bandwidth=kB_per_s(8 * bandwidth_kb),
            n_leechers=4,
            seed=seed,
        )
        result = Swarm(splice, config, obs=obs).run()
        analysis = analyze_observability(obs)
        # every stall attributed to exactly one documented cause
        for attribution in analysis.attributions:
            assert attribution.cause in STALL_CAUSES
            assert attribution.end >= attribution.start
            assert attribution.window[0] <= attribution.end
        # histogram sums to the run's StreamingMetrics stall count
        metrics_stalls = sum(
            m.stall_count for m in result.metrics.values()
        )
        assert sum(analysis.causes.values()) == metrics_stalls
        assert analysis.stall_count == metrics_stalls
        # and analysis is a pure function of the trace
        assert analysis == analyze_events(obs.events())


class TestSweepDeterminism:
    def test_jobs1_and_jobs4_attributions_are_byte_identical(
        self, short_video
    ):
        cfg = ExperimentConfig(seeds=(7, 17), n_leechers=4)
        cells = [
            cell_for(
                SplicerSpec("duration", 4.0), 192, cfg,
                video=short_video, label="det/a",
            ),
            cell_for(
                SplicerSpec("gop"), 512, cfg,
                video=short_video, label="det/b",
            ),
        ]
        serial = SweepExecutor(jobs=1).run_cells(cells, analyze=True)
        pooled = SweepExecutor(jobs=4).run_cells(cells, analyze=True)
        assert repr(serial) == repr(pooled)
        for cell in serial:
            assert cell.analysis is not None
            assert cell.analysis.runs == 2
            assert sum(cell.analysis.causes.values()) == (
                cell.analysis.stall_count
            )

    def test_unanalyzed_sweep_attaches_no_analysis(self, short_video):
        cfg = ExperimentConfig(seeds=(7,), n_leechers=4)
        cells = [
            cell_for(
                SplicerSpec("duration", 4.0), 192, cfg,
                video=short_video, label="plain",
            )
        ]
        (result,) = SweepExecutor(jobs=1).run_cells(cells)
        assert result.analysis is None


# -- rendering ---------------------------------------------------------


class TestRendering:
    def test_render_analysis_mentions_causes_and_peers(
        self, short_video
    ):
        _, obs = _stream(short_video)
        analysis = analyze_observability(obs)
        text = render_analysis(analysis)
        assert "## Stall causes" in text
        for cause in STALL_CAUSES:
            assert cause in text
        assert "peer-1" in text

    def test_gantt_has_one_row_per_peer_and_a_legend(
        self, short_video
    ):
        _, obs = _stream(short_video)
        timelines = build_timelines(obs.events())
        chart = render_gantt(
            timelines, attribute_stalls(timelines), width=40
        )
        lines = chart.splitlines()
        assert sum("|" in line for line in lines) >= len(
            timelines.timelines
        )
        assert "legend:" in lines[-1]

    def test_gantt_on_empty_trace(self):
        assert "no peers" in render_gantt(build_timelines([]))


# -- CLI ---------------------------------------------------------------


class TestAnalyzeCommand:
    def test_missing_file_exits_2(self, capsys, tmp_path):
        code = main(["analyze", str(tmp_path / "nope.jsonl")])
        assert code == 2
        assert "cannot read trace" in capsys.readouterr().err

    def test_corrupt_file_exits_2(self, capsys, tmp_path):
        path = tmp_path / "corrupt.jsonl"
        path.write_text("this is not json\n")
        code = main(["analyze", str(path)])
        assert code == 2
        assert "corrupt trace" in capsys.readouterr().err

    def test_analyzes_a_real_trace(self, capsys, tmp_path, short_video):
        _, obs = _stream(short_video)
        path = tmp_path / "run.jsonl"
        dump_jsonl(obs.events(), str(path))
        code = main(["analyze", str(path), "--gantt"])
        assert code == 0
        out = capsys.readouterr().out
        assert "## Stall causes" in out
        assert "## Timeline" in out
        assert "legend:" in out

    def test_trace_command_prints_severity_counts(
        self, capsys, tmp_path, short_video
    ):
        _, obs = _stream(short_video)
        path = tmp_path / "run.jsonl"
        dump_jsonl(obs.events(), str(path))
        code = main(["trace", str(path)])
        assert code == 0
        out = capsys.readouterr().out
        assert "Events by category:" in out
        assert "Events by severity:" in out
        assert "info:" in out

    def test_reproduce_analyze_requires_figure(self, capsys):
        code = main(["reproduce", "--quick", "--analyze"])
        assert code == 2
        assert "--figure" in capsys.readouterr().err
