"""Run manifests: environment provenance every artifact embeds."""

from __future__ import annotations

import json

from repro.obs.manifest import (
    ARTIFACT_SCHEMA,
    MANIFEST_SCHEMA,
    build_manifest,
    environment_block,
    git_info,
    render_environment,
    run_manifest,
    usable_cores,
)


class TestEnvironmentBlock:
    def test_has_every_provenance_fact(self):
        env = environment_block()
        assert set(env) == {
            "python",
            "implementation",
            "platform",
            "machine",
            "cpu_count",
            "usable_cores",
            "numpy",
        }
        assert env["cpu_count"] >= 1
        assert 1 <= env["usable_cores"] <= env["cpu_count"]

    def test_numpy_version_matches_the_import(self):
        env = environment_block()
        try:
            import numpy
        except Exception:
            assert env["numpy"] is None
        else:
            assert env["numpy"] == numpy.__version__

    def test_usable_cores_positive(self):
        assert usable_cores() >= 1

    def test_json_encodable(self):
        json.dumps(build_manifest())


class TestGitInfo:
    def test_describes_this_checkout(self):
        info = git_info()
        # The test suite runs from a git checkout; outside one this
        # degrades to None by design.
        if info is not None:
            assert len(info["sha"]) == 40
            assert isinstance(info["dirty"], bool)

    def test_nonexistent_root_degrades_to_none(self, tmp_path):
        assert git_info(tmp_path / "not-a-repo") is None


class TestRunManifest:
    def test_records_command_and_extras(self):
        payload = run_manifest(
            "repro reproduce --quick", quick=True, jobs=4
        )
        assert payload["schema"] == MANIFEST_SCHEMA
        assert payload["command"] == "repro reproduce --quick"
        assert payload["quick"] is True
        assert payload["jobs"] == 4
        assert "env" in payload
        assert "created" in payload
        json.dumps(payload)

    def test_schema_tags_are_versioned(self):
        assert ARTIFACT_SCHEMA.endswith("/1")
        assert MANIFEST_SCHEMA.endswith("/1")


class TestRenderEnvironment:
    def test_mentions_interpreter_and_cores(self):
        import platform

        text = render_environment()
        assert platform.python_version() in text
        assert "cpus" in text
        assert "numpy" in text

    def test_absent_numpy_renders_as_absent(self):
        text = render_environment({"env": {"numpy": None}})
        assert "numpy absent" in text

    def test_renders_git_state_when_present(self):
        manifest = {
            "env": {},
            "git": {"sha": "a" * 40, "dirty": True},
        }
        text = render_environment(manifest)
        assert "aaaaaaaaaaaa" in text
        assert "dirty" in text

    def test_tolerates_missing_git(self):
        assert "git" not in render_environment(
            {"env": {}, "git": None}
        )
