"""BenchHarness and the ``repro.bench/1`` artifact schema."""

from __future__ import annotations

import json
from pathlib import Path

import pytest

from repro.errors import ArtifactError, BenchError
from repro.obs.bench import (
    BenchHarness,
    SCHEMA,
    build_artifact,
    discover_suites,
    load_artifact,
    load_suite,
    validate_artifact,
)

FIXTURES = Path(__file__).resolve().parent / "fixtures"


class FakeClock:
    """Monotonic clock advancing a fixed step per reading."""

    def __init__(self, step=1.0):
        self.now = 0.0
        self.step = step

    def __call__(self):
        self.now += self.step
        return self.now


def make_harness(tmp_path, **kwargs):
    kwargs.setdefault("clock", FakeClock())
    return BenchHarness("demo", results_dir=tmp_path, **kwargs)


class TestCaseTiming:
    def test_fixed_rounds_keep_minimum(self, tmp_path):
        calls = []
        harness = make_harness(tmp_path)
        result = harness.case(
            "c", lambda: calls.append(1) or len(calls), rounds=3
        )
        assert result == 3  # last round's return value
        case = harness.cases[0]
        assert case.timing.rounds == 3
        # FakeClock steps 1.0 per reading: every round's wall is 1.0.
        assert case.timing.best_s == pytest.approx(1.0)
        assert case.timing.mean_s == pytest.approx(1.0)
        assert case.timing.stdev_s == 0.0

    def test_warmup_rounds_are_discarded(self, tmp_path):
        calls = []
        harness = make_harness(tmp_path)
        harness.case(
            "c", lambda: calls.append(1), rounds=2, warmup=3
        )
        assert len(calls) == 5
        assert harness.cases[0].timing.rounds == 2
        assert harness.cases[0].timing.warmup == 3

    def test_budget_mode_repeats_until_spent(self, tmp_path):
        harness = make_harness(tmp_path)
        harness.case("c", lambda: None, budget_s=2.5)
        # Each round costs 1.0 fake second; 3 rounds cross 2.5.
        assert harness.cases[0].timing.rounds == 3

    def test_self_timed_uses_reported_wall(self, tmp_path):
        harness = make_harness(tmp_path)
        harness.case("c", lambda: ("payload", 0.25), self_timed=True)
        assert harness.cases[0].timing.best_s == 0.25

    def test_self_timed_rejects_bad_wall(self, tmp_path):
        harness = make_harness(tmp_path)
        with pytest.raises(BenchError):
            harness.case(
                "c", lambda: ("payload", -1.0), self_timed=True
            )

    def test_duplicate_case_id_rejected(self, tmp_path):
        harness = make_harness(tmp_path)
        harness.case("c", lambda: None)
        with pytest.raises(BenchError):
            harness.case("c", lambda: None)

    def test_invalid_suite_name_rejected(self, tmp_path):
        with pytest.raises(BenchError):
            BenchHarness("a/b", results_dir=tmp_path)


class TestAnnotate:
    def test_events_per_sec_derived_from_best_wall(self, tmp_path):
        harness = make_harness(tmp_path)
        harness.case("c", lambda: ("x", 0.5), self_timed=True)
        harness.annotate(events_fired=1000, sim_seconds=60.0)
        case = harness.cases[0]
        assert case.events_fired == 1000
        assert case.events_per_sec == pytest.approx(2000.0)
        assert case.sim_seconds == 60.0

    def test_analysis_object_is_folded_in(self, tmp_path):
        class Analysis:
            causes = {"startup": 3, "seeder-bottleneck": 1}
            stall_count = 4
            mean_transfer_efficiency = 0.82

        harness = make_harness(tmp_path)
        harness.case("c", lambda: None)
        harness.annotate(analysis=Analysis())
        case = harness.cases[0]
        assert case.causes == {"startup": 3, "seeder-bottleneck": 1}
        assert case.metrics["attributed_stalls"] == 4.0
        assert case.metrics["transfer_efficiency"] == 0.82

    def test_annotate_by_case_id(self, tmp_path):
        harness = make_harness(tmp_path)
        harness.case("first", lambda: None)
        harness.case("second", lambda: None)
        harness.annotate("first", speedup=2.0)
        assert harness.cases[0].metrics == {"speedup": 2.0}
        assert harness.cases[1].metrics == {}

    def test_annotate_unknown_case_rejected(self, tmp_path):
        harness = make_harness(tmp_path)
        harness.case("c", lambda: None)
        with pytest.raises(BenchError):
            harness.annotate("nope", x=1.0)

    def test_annotate_before_any_case_rejected(self, tmp_path):
        harness = make_harness(tmp_path)
        with pytest.raises(BenchError):
            harness.annotate(x=1.0)


class TestEmit:
    def test_writes_table_next_to_artifact(self, tmp_path, capsys):
        harness = make_harness(tmp_path)
        harness.emit("a table", name="my_table")
        assert (tmp_path / "my_table.txt").read_text() == "a table\n"
        assert "a table" in capsys.readouterr().out

    def test_quick_run_never_overwrites_tables(self, tmp_path, capsys):
        (tmp_path / "my_table.txt").write_text("committed\n")
        harness = make_harness(tmp_path, quick=True)
        harness.emit("fresh", name="my_table")
        assert (tmp_path / "my_table.txt").read_text() == "committed\n"
        assert "fresh" in capsys.readouterr().out


class TestArtifactRoundTrip:
    def test_write_then_load_validates(self, tmp_path):
        harness = make_harness(tmp_path)
        harness.case(
            "c",
            lambda: None,
            params={"n": 3},
            digest_of=("workload", 3),
        )
        harness.annotate(events_fired=10, stalls=1.5)
        target = harness.write()
        assert target == tmp_path / "BENCH_demo.json"
        payload = load_artifact(target)
        assert payload["schema"] == SCHEMA
        assert payload["suite"] == "demo"
        assert payload["quick"] is False
        case = payload["cases"][0]
        assert case["id"] == "c"
        assert case["params"] == {"n": 3}
        assert len(case["digest"]) == 16
        assert case["metrics"] == {"stalls": 1.5}
        env = payload["manifest"]["env"]
        assert env["python"] and env["platform"]
        assert env["usable_cores"] >= 1

    def test_quick_flag_recorded(self, tmp_path):
        harness = make_harness(tmp_path, quick=True)
        harness.case("c", lambda: None)
        payload = load_artifact(harness.write())
        assert payload["quick"] is True

    def test_load_rejects_bad_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{not json")
        with pytest.raises(ArtifactError, match="not valid JSON"):
            load_artifact(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(ArtifactError, match="cannot read"):
            load_artifact(tmp_path / "nope.json")


class TestValidate:
    def _valid(self):
        harness = BenchHarness("demo", clock=FakeClock())
        harness.case("c", lambda: None)
        return harness.artifact()

    def test_round_trip_through_json_stays_valid(self):
        payload = json.loads(json.dumps(self._valid()))
        validate_artifact(payload)

    def test_rejects_unknown_schema(self):
        payload = self._valid()
        payload["schema"] = "repro.bench/999"
        with pytest.raises(ArtifactError, match="unsupported schema"):
            validate_artifact(payload)

    def test_rejects_duplicate_case_ids(self):
        payload = self._valid()
        payload["cases"].append(dict(payload["cases"][0]))
        with pytest.raises(ArtifactError, match="duplicate case id"):
            validate_artifact(payload)

    def test_rejects_inconsistent_timing(self):
        payload = self._valid()
        payload["cases"][0]["timing"]["best_s"] = 10.0
        payload["cases"][0]["timing"]["mean_s"] = 1.0
        with pytest.raises(ArtifactError, match="best_s exceeds"):
            validate_artifact(payload)

    def test_rejects_negative_cause_counts(self):
        payload = self._valid()
        payload["cases"][0]["causes"] = {"startup": -1}
        with pytest.raises(ArtifactError, match="causes"):
            validate_artifact(payload)

    def test_rejects_non_numeric_metric(self):
        payload = self._valid()
        payload["cases"][0]["metrics"] = {"stalls": "many"}
        with pytest.raises(ArtifactError, match="expected a number"):
            validate_artifact(payload)

    def test_rejects_missing_env(self):
        payload = self._valid()
        del payload["manifest"]["env"]
        with pytest.raises(ArtifactError, match="manifest.env"):
            validate_artifact(payload)


class TestGoldenFixture:
    """The committed example artifact stays schema-valid forever.

    If a schema change invalidates this fixture, that change is
    backwards-incompatible and the schema tag must be bumped (see
    docs/OBSERVABILITY.md).
    """

    def test_golden_artifact_is_valid(self):
        payload = load_artifact(FIXTURES / "BENCH_golden.json")
        assert payload["schema"] == SCHEMA
        assert [case["id"] for case in payload["cases"]] == [
            "star/20/incremental",
            "star/20/reference",
        ]

    def test_golden_self_compare_is_clean(self):
        from repro.obs.compare import compare_artifacts

        payload = load_artifact(FIXTURES / "BENCH_golden.json")
        comparison = compare_artifacts(payload, payload)
        assert comparison.ok
        assert not comparison.missing and not comparison.added
        for row in comparison.rows:
            assert row.verdict == "neutral"
            assert row.delta_pct == 0.0


class TestSuiteDiscovery:
    def test_discovers_bench_scripts(self, tmp_path):
        (tmp_path / "bench_alpha.py").write_text("x = 1\n")
        (tmp_path / "bench_beta.py").write_text("x = 2\n")
        (tmp_path / "helper.py").write_text("x = 3\n")
        suites = discover_suites(tmp_path)
        assert sorted(suites) == ["alpha", "beta"]

    def test_load_suite_requires_run_suite(self, tmp_path):
        script = tmp_path / "bench_alpha.py"
        script.write_text("x = 1\n")
        with pytest.raises(BenchError, match="run_suite"):
            load_suite("alpha", script)

    def test_load_suite_wraps_import_errors(self, tmp_path):
        script = tmp_path / "bench_alpha.py"
        script.write_text("raise ValueError('boom')\n")
        with pytest.raises(BenchError, match="boom"):
            load_suite("alpha", script)

    def test_load_suite_runs(self, tmp_path):
        script = tmp_path / "bench_alpha.py"
        script.write_text(
            "def run_suite(harness, quick=False):\n"
            "    harness.case('only', lambda: None)\n"
            "    return 'done'\n"
        )
        module = load_suite("alpha", script)
        harness = BenchHarness(
            "alpha", results_dir=tmp_path, clock=FakeClock()
        )
        assert module.run_suite(harness) == "done"
        assert [case.case_id for case in harness.cases] == ["only"]


class TestBuildArtifact:
    def test_empty_suite_is_valid(self):
        payload = build_artifact("empty", [])
        validate_artifact(payload)
        assert payload["cases"] == []
