"""Wall-clock ops telemetry: spans, logs, heartbeats, fleet view."""

from __future__ import annotations

import json
from types import SimpleNamespace

import pytest

from repro.errors import OpsError
from repro.obs.ops import (
    NULL_HEARTBEAT,
    NULL_OPS,
    OpsLog,
    ShardHeartbeat,
    find_heartbeats,
    fleet_status,
    heartbeat_path,
    load_ops,
    merge_ops_path,
    read_heartbeat,
    render_fleet,
    shard_ops_path,
)
from repro.obs.span import (
    OPS_SCHEMA,
    Span,
    critical_path,
    render_critical_path,
    render_span_tree,
    span_from_dict,
)


class FakeClock:
    """A deterministic epoch-seconds clock tests advance by hand."""

    def __init__(self, start: float = 1000.0) -> None:
        self.now = start

    def __call__(self) -> float:
        return self.now

    def advance(self, seconds: float) -> None:
        self.now += seconds


def outcome(ok: bool = True, cached: bool = False) -> SimpleNamespace:
    return SimpleNamespace(ok=ok, cached=cached)


def fake_plan(shards: int, per_shard: list[int]) -> dict:
    runs = [
        {"shard": shard}
        for shard, count in enumerate(per_shard)
        for _ in range(count)
    ]
    return {
        "figure": "2",
        "quick": True,
        "shards": shards,
        "runs": runs,
    }


def heartbeat(
    shard: int,
    updated: float,
    state: str = "running",
    done: int = 0,
    total: int = 4,
    rate: float | None = None,
    computed: int | None = None,
) -> dict:
    return {
        "schema": OPS_SCHEMA,
        "kind": "heartbeat",
        "shard": shard,
        "shards": 3,
        "pid": 123,
        "state": state,
        "started": updated - 10.0,
        "updated": updated,
        "runs_total": total,
        "runs_done": done,
        "runs_computed": computed if computed is not None else done,
        "runs_cached": 0,
        "runs_failed": 0,
        "in_flight": total - done,
        "last_commit": None,
        "rate_runs_per_s": rate,
        "eta_s": (total - done) / rate if rate else None,
    }


class TestSpan:
    def test_round_trips_through_dict(self):
        span = Span(
            id=3,
            parent=1,
            name="cell-run",
            start=10.0,
            end=12.5,
            status="failed",
            attrs={"cell": "gop", "seed": 7},
        )
        rebuilt = span_from_dict(span.to_dict())
        assert rebuilt == span
        assert rebuilt.duration == pytest.approx(2.5)

    @pytest.mark.parametrize(
        "record",
        [
            "not a dict",
            {"kind": "span"},  # no id
            {"kind": "span", "id": 0, "name": "x"},
            {"kind": "span", "id": 1, "name": ""},
            {"kind": "span", "id": 1, "name": "x", "start": "soon"},
            {
                "kind": "span",
                "id": 1,
                "name": "x",
                "start": 0,
                "end": 1,
                "status": "maybe",
            },
            {
                "kind": "span",
                "id": 1,
                "name": "x",
                "start": 0,
                "end": 1,
                "status": "ok",
                "attrs": [],
            },
        ],
    )
    def test_rejects_malformed_records(self, record):
        with pytest.raises(OpsError):
            span_from_dict(record)

    def test_critical_path_follows_latest_child(self):
        spans = [
            Span(id=1, parent=None, name="shard", start=0.0, end=10.0),
            Span(id=2, parent=1, name="cell-run", start=0.0, end=4.0),
            Span(id=3, parent=1, name="cell-run", start=1.0, end=9.0),
            Span(id=4, parent=3, name="store-commit",
                 start=8.9, end=9.0),
        ]
        path = critical_path(spans)
        assert [span.id for span in path] == [1, 3, 4]

    def test_render_names_every_span(self):
        spans = [
            Span(id=1, parent=None, name="shard", start=0.0, end=2.0),
            Span(
                id=2,
                parent=1,
                name="cell-run",
                start=0.0,
                end=1.5,
                attrs={"cell": "gop @ 128", "seed": 7, "cached": True},
            ),
        ]
        tree = render_span_tree(spans)
        assert "shard" in tree
        assert "gop @ 128 seed 7" in tree
        assert "(cached)" in tree
        summary = render_critical_path(spans)
        assert "100.0%" in summary

    def test_render_empty_log(self):
        assert "empty" in render_span_tree([])
        assert "empty" in render_critical_path([])


class TestOpsLog:
    def test_spans_nest_by_stack(self, tmp_path):
        clock = FakeClock()
        log = OpsLog(tmp_path / "run.ops.jsonl", clock=clock)
        with log.span("shard", shard=0) as root:
            clock.advance(1.0)
            with log.span("cell-run", cell="gop"):
                clock.advance(2.0)
            root.attrs["cached"] = 0
        log.close()
        spans = load_ops(log.path)
        by_name = {span.name: span for span in spans}
        assert by_name["cell-run"].parent == by_name["shard"].id
        assert by_name["shard"].parent is None
        assert by_name["shard"].duration == pytest.approx(3.0)
        assert by_name["shard"].attrs["cached"] == 0

    def test_record_backdates_by_duration(self, tmp_path):
        clock = FakeClock(start=500.0)
        log = OpsLog(tmp_path / "run.ops.jsonl", clock=clock)
        log.record("cell-run", duration_s=2.0, cell="gop", pid=42)
        log.close()
        (span,) = load_ops(log.path)
        assert span.start == pytest.approx(498.0)
        assert span.end == pytest.approx(500.0)
        assert span.attrs["pid"] == 42

    def test_failed_block_marks_span_failed(self, tmp_path):
        log = OpsLog(tmp_path / "run.ops.jsonl", clock=FakeClock())
        with pytest.raises(ValueError):
            with log.span("shard"):
                raise ValueError("boom")
        log.close()
        (span,) = load_ops(log.path)
        assert span.status == "failed"

    def test_header_names_the_schema(self, tmp_path):
        log = OpsLog(tmp_path / "run.ops.jsonl", clock=FakeClock())
        log.record("plan")
        log.close()
        first = json.loads(
            log.path.read_text(encoding="utf-8").splitlines()[0]
        )
        assert first == {
            "schema": OPS_SCHEMA,
            "kind": "header",
            "created": 1000.0,
        }

    def test_no_file_until_first_span(self, tmp_path):
        log = OpsLog(tmp_path / "run.ops.jsonl", clock=FakeClock())
        log.close()
        assert not log.path.exists()

    def test_null_ops_is_disabled_and_writes_nothing(self, tmp_path):
        assert not NULL_OPS.enabled
        with NULL_OPS.span("shard") as span:
            span.attrs["x"] = 1
        NULL_OPS.record("cell-run", duration_s=1.0)
        NULL_OPS.close()


class TestLoadOps:
    def test_missing_file(self, tmp_path):
        with pytest.raises(OpsError, match="cannot read"):
            load_ops(tmp_path / "absent.jsonl")

    def test_empty_file(self, tmp_path):
        path = tmp_path / "empty.jsonl"
        path.write_text("", encoding="utf-8")
        with pytest.raises(OpsError, match="empty"):
            load_ops(path)

    def test_malformed_json(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{nope", encoding="utf-8")
        with pytest.raises(OpsError, match="not valid JSON"):
            load_ops(path)

    def test_missing_header(self, tmp_path):
        path = tmp_path / "headless.jsonl"
        record = Span(
            id=1, parent=None, name="shard", start=0.0, end=1.0
        ).to_dict()
        path.write_text(json.dumps(record) + "\n", encoding="utf-8")
        with pytest.raises(OpsError, match="header"):
            load_ops(path)

    def test_unknown_schema_major_is_rejected(self, tmp_path):
        path = tmp_path / "future.jsonl"
        path.write_text(
            json.dumps(
                {"schema": "repro.ops/99", "kind": "header"}
            )
            + "\n",
            encoding="utf-8",
        )
        with pytest.raises(OpsError, match="repro.ops/99"):
            load_ops(path)

    def test_unknown_record_kinds_are_skipped(self, tmp_path):
        path = tmp_path / "forward.jsonl"
        lines = [
            {"schema": OPS_SCHEMA, "kind": "header", "created": 0},
            {"kind": "annotation", "text": "future record type"},
            Span(
                id=1, parent=None, name="shard", start=0.0, end=1.0
            ).to_dict(),
        ]
        path.write_text(
            "".join(json.dumps(line) + "\n" for line in lines),
            encoding="utf-8",
        )
        assert len(load_ops(path)) == 1


class TestShardHeartbeat:
    def make(self, tmp_path, clock, interval=1.0):
        return ShardHeartbeat(
            heartbeat_path(tmp_path, 0),
            shard=0,
            shards=3,
            interval=interval,
            clock=clock,
        )

    def test_begin_writes_immediately(self, tmp_path):
        beat = self.make(tmp_path, FakeClock())
        beat.begin(4)
        payload = read_heartbeat(beat.path)
        assert payload["state"] == "running"
        assert payload["runs_total"] == 4
        assert payload["runs_done"] == 0
        assert payload["in_flight"] == 4
        assert payload["schema"] == OPS_SCHEMA

    def test_updates_are_rate_limited(self, tmp_path):
        clock = FakeClock()
        beat = self.make(tmp_path, clock, interval=10.0)
        beat.begin(4)
        clock.advance(1.0)
        beat.update(outcome())
        # Inside the interval: file still shows the begin state.
        assert read_heartbeat(beat.path)["runs_done"] == 0
        clock.advance(10.0)
        beat.update(outcome())
        assert read_heartbeat(beat.path)["runs_done"] == 2

    def test_final_run_always_writes(self, tmp_path):
        clock = FakeClock()
        beat = self.make(tmp_path, clock, interval=1000.0)
        beat.begin(2)
        clock.advance(0.1)
        beat.update(outcome())
        clock.advance(0.1)
        beat.update(outcome())
        assert read_heartbeat(beat.path)["runs_done"] == 2

    def test_rate_and_eta_from_observed_run_rate(self, tmp_path):
        clock = FakeClock()
        beat = self.make(tmp_path, clock)
        beat.begin(4)
        clock.advance(2.0)
        beat.update(outcome())
        clock.advance(2.0)
        beat.update(outcome())
        payload = read_heartbeat(beat.path)
        assert payload["rate_runs_per_s"] == pytest.approx(0.5)
        assert payload["eta_s"] == pytest.approx(4.0)
        assert payload["last_commit"] == pytest.approx(clock.now)

    def test_finish_downgrades_to_failed_on_failures(self, tmp_path):
        clock = FakeClock()
        beat = self.make(tmp_path, clock)
        beat.begin(2)
        beat.update(outcome(ok=False))
        clock.advance(2.0)
        beat.update(outcome())
        beat.finish("done")
        payload = read_heartbeat(beat.path)
        assert payload["state"] == "failed"
        assert payload["runs_failed"] == 1

    def test_cached_runs_counted_separately(self, tmp_path):
        clock = FakeClock()
        beat = self.make(tmp_path, clock)
        beat.begin(2)
        clock.advance(2.0)
        beat.update(outcome(cached=True))
        clock.advance(2.0)
        beat.update(outcome())
        beat.finish()
        payload = read_heartbeat(beat.path)
        assert payload["runs_cached"] == 1
        assert payload["runs_computed"] == 1
        assert payload["state"] == "done"

    def test_null_heartbeat_is_disabled(self):
        assert not NULL_HEARTBEAT.enabled
        NULL_HEARTBEAT.begin(4)
        NULL_HEARTBEAT.update(outcome())
        NULL_HEARTBEAT.finish()

    def test_read_rejects_schema_drift(self, tmp_path):
        path = tmp_path / "bad.heartbeat.json"
        path.write_text(
            json.dumps({"schema": "repro.ops/99", "kind": "heartbeat"}),
            encoding="utf-8",
        )
        with pytest.raises(OpsError, match="repro.ops/99"):
            read_heartbeat(path)

    def test_read_rejects_wrong_kind(self, tmp_path):
        path = tmp_path / "bad.heartbeat.json"
        path.write_text(
            json.dumps({"schema": OPS_SCHEMA, "kind": "header"}),
            encoding="utf-8",
        )
        with pytest.raises(OpsError, match="kind"):
            read_heartbeat(path)

    def test_find_heartbeats_scans_store_roots(self, tmp_path):
        clock = FakeClock()
        for shard, root in enumerate(["a", "b"]):
            beat = ShardHeartbeat(
                heartbeat_path(tmp_path / root, shard),
                shard=shard,
                shards=2,
                clock=clock,
            )
            beat.begin(1)
        found = find_heartbeats(
            [tmp_path / "a", tmp_path / "b", tmp_path / "empty"]
        )
        assert sorted(p["shard"] for p in found) == [0, 1]


class TestFleetStatus:
    def test_joins_plan_with_heartbeats(self):
        plan = fake_plan(3, [4, 4, 4])
        now = 1000.0
        statuses = fleet_status(
            plan,
            [
                heartbeat(0, now - 1.0, done=4, state="done"),
                heartbeat(1, now - 1.0, done=2, rate=1.0),
            ],
            now=now,
        )
        assert [s.state for s in statuses] == [
            "done",
            "running",
            "missing",
        ]
        assert statuses[0].planned == 4
        assert statuses[1].done == 2
        assert statuses[2].note == "no heartbeat"

    def test_stale_running_heartbeat_marks_shard_dead(self):
        plan = fake_plan(3, [4, 4, 4])
        now = 1000.0
        statuses = fleet_status(
            plan,
            [
                heartbeat(0, now - 1.0, done=2, rate=1.0),
                heartbeat(1, now - 120.0, done=1, rate=1.0),
                heartbeat(2, now - 1.0, done=4, state="done"),
            ],
            now=now,
            stale_after=30.0,
        )
        assert statuses[1].state == "dead"
        assert "stale" in statuses[1].note
        # Terminal heartbeats never go stale: the shard exited.
        assert statuses[2].state == "done"

    def test_slow_shard_flagged_as_straggler(self):
        plan = fake_plan(3, [4, 4, 4])
        now = 1000.0
        statuses = fleet_status(
            plan,
            [
                heartbeat(0, now - 1.0, done=2, rate=2.0),
                heartbeat(1, now - 1.0, done=2, rate=2.0),
                heartbeat(2, now - 1.0, done=1, rate=0.1),
            ],
            now=now,
            straggler_below=0.5,
        )
        assert [s.straggler for s in statuses] == [False, False, True]
        assert statuses[2].state == "running"
        assert "median" in statuses[2].note

    def test_lone_running_shard_is_never_a_straggler(self):
        plan = fake_plan(2, [4, 4])
        now = 1000.0
        statuses = fleet_status(
            plan,
            [
                heartbeat(0, now - 1.0, done=4, state="done"),
                heartbeat(1, now - 1.0, done=1, rate=0.01),
            ],
            now=now,
        )
        assert not statuses[1].straggler

    def test_freshest_heartbeat_wins_per_shard(self):
        plan = fake_plan(1, [4])
        now = 1000.0
        statuses = fleet_status(
            plan,
            [
                heartbeat(0, now - 50.0, done=1),
                heartbeat(0, now - 1.0, done=3, rate=1.0),
            ],
            now=now,
        )
        assert statuses[0].done == 3
        assert statuses[0].state == "running"

    def test_render_fleet_shows_bars_and_flags(self):
        plan = fake_plan(3, [4, 4, 4])
        now = 1000.0
        statuses = fleet_status(
            plan,
            [
                heartbeat(0, now - 1.0, done=2, rate=2.0),
                heartbeat(1, now - 1.0, done=2, rate=2.0),
                heartbeat(2, now - 120.0, done=1, rate=1.0),
            ],
            now=now,
        )
        text = render_fleet(plan, statuses)
        assert "figure 2 (quick)" in text
        assert "shard 0" in text
        assert "runs/s" in text
        assert "ETA" in text
        assert "DEAD" in text
        assert "#" in text

    def test_telemetry_paths_live_under_the_store(self, tmp_path):
        assert shard_ops_path(tmp_path, 2).name == "shard-2.ops.jsonl"
        assert merge_ops_path(tmp_path).name == "merge.ops.jsonl"
        assert (
            heartbeat_path(tmp_path, 2).parent
            == shard_ops_path(tmp_path, 2).parent
        )
