"""Exporters: JSONL round-trips, CSV, and the trace summary."""

from __future__ import annotations

import io

import pytest

from repro.errors import TraceError
from repro.obs import (
    EVENT_TYPES,
    EventTracer,
    MetricsRegistry,
    PeerDeparted,
    PeerJoined,
    PlaybackFinished,
    PlaybackStarted,
    SelectionMade,
    StallEnded,
    StallStarted,
    dump_jsonl,
    event_counts,
    events_to_jsonl,
    load_jsonl,
    summarize_trace,
    timeseries_csv,
)

def _one_of_each():
    """Build one plausible instance of every registered event type."""
    import dataclasses

    samples = {
        "time": 1.5,
        "pending": 3,
        "events_fired": 10,
        "wall_seconds": 0.25,
        "label": "a->b#4",
        "size": 1024.0,
        "rtt": 0.05,
        "loss_rate": 0.0125,
        "rate": 64000.0,
        "duration": 2.0,
        "transferred": 512.0,
        "peer": "peer-1",
        "downloads_cancelled": 2,
        "segments": 30,
        "known_peers": 4,
        "segment": 7,
        "source": "seeder",
        "urgent": True,
        "expected_size": 4096.0,
        "wait": 0.75,
        "retry_source": "peer-2",
        "buffered_playtime": 8.0,
        "bandwidth": 128000.0,
        "selector": "sequential",
        "head": (1, 2, 3),
        "candidates": 9,
        "startup_time": 4.5,
        "stalls": 2,
        "total_stall_duration": 3.25,
    }
    events = []
    for cls in EVENT_TYPES.values():
        kwargs = {
            field.name: samples[field.name]
            for field in dataclasses.fields(cls)
        }
        events.append(cls(**kwargs))
    return events


class TestJsonlRoundTrip:
    def test_every_event_type_round_trips_identically(self, tmp_path):
        events = _one_of_each()
        path = tmp_path / "trace.jsonl"
        dump_jsonl(events, str(path))
        assert load_jsonl(str(path)) == events

    def test_round_trip_through_file_object(self):
        events = _one_of_each()
        buffer = io.StringIO()
        dump_jsonl(events, buffer)
        buffer.seek(0)
        assert load_jsonl(buffer) == events

    def test_events_to_jsonl_one_line_per_event(self):
        events = _one_of_each()
        text = events_to_jsonl(events)
        assert len(text.strip().splitlines()) == len(events)

    def test_tuple_fields_survive(self, tmp_path):
        event = SelectionMade(
            time=0.0, peer="p", selector="s", head=(5, 6), candidates=2
        )
        path = tmp_path / "t.jsonl"
        dump_jsonl([event], str(path))
        loaded = load_jsonl(str(path))[0]
        assert loaded.head == (5, 6)
        assert isinstance(loaded.head, tuple)
        assert loaded == event

    def test_missing_file_raises(self):
        with pytest.raises(TraceError):
            load_jsonl("/nonexistent/trace.jsonl")

    def test_bad_json_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("{this is broken\n")
        with pytest.raises(TraceError, match="not JSON"):
            load_jsonl(str(path))

    def test_non_object_line_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text("[1, 2, 3]\n")
        with pytest.raises(TraceError):
            load_jsonl(str(path))

    def test_unknown_event_raises(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"event": "Mystery", "time": 0.0, '
            '"category": "x", "severity": "info"}\n'
        )
        with pytest.raises(TraceError, match="Mystery"):
            load_jsonl(str(path))

    def test_wrong_fields_raise(self, tmp_path):
        path = tmp_path / "bad.jsonl"
        path.write_text(
            '{"event": "PeerJoined", "time": 0.0, "category": "swarm", '
            '"severity": "info", "bogus": 1}\n'
        )
        with pytest.raises(TraceError, match="PeerJoined"):
            load_jsonl(str(path))


class TestTimeseriesCsv:
    def test_header_and_rows(self):
        registry = MetricsRegistry()
        series = registry.timeseries("net.link.up.utilization")
        series.sample(0.0, 0.5)
        series.sample(1.0, 0.75)
        lines = timeseries_csv(registry).strip().splitlines()
        assert lines[0] == "metric,time,value"
        assert lines[1] == "net.link.up.utilization,0.0,0.5"
        assert len(lines) == 3


class TestSummarizeTrace:
    def test_pairs_stalls(self):
        events = [
            PeerJoined(time=0.0, peer="p"),
            PlaybackStarted(time=2.0, peer="p", startup_time=2.0),
            StallStarted(time=5.0, peer="p", segment=3),
            StallEnded(time=6.0, peer="p", segment=3, duration=1.0),
            PlaybackFinished(
                time=30.0, peer="p", stalls=1, total_stall_duration=1.0
            ),
        ]
        summary = summarize_trace(events)["p"]
        assert summary.joined == 0.0
        assert summary.startup_time == 2.0
        assert summary.stall_count == 1
        assert summary.total_stall_duration == pytest.approx(1.0)
        assert summary.finished
        assert not summary.departed

    def test_unpaired_start_not_counted(self):
        """A stall the safety cap cut short matches StreamingMetrics,
        which records a stall only once it has ended."""
        events = [
            PeerJoined(time=0.0, peer="p"),
            StallStarted(time=5.0, peer="p", segment=3),
        ]
        summary = summarize_trace(events)["p"]
        assert summary.stall_count == 0
        assert summary.total_stall_duration == 0.0

    def test_end_without_start_raises(self):
        events = [
            StallEnded(time=6.0, peer="p", segment=3, duration=1.0),
        ]
        with pytest.raises(TraceError):
            summarize_trace(events)

    def test_departure_recorded(self):
        events = [
            PeerJoined(time=0.0, peer="p"),
            PeerDeparted(time=9.0, peer="p", downloads_cancelled=1),
        ]
        assert summarize_trace(events)["p"].departed


class TestEventCounts:
    def test_counts_by_category_and_name(self):
        tracer = EventTracer()
        tracer.emit(PeerJoined(time=0.0, peer="a"))
        tracer.emit(PeerJoined(time=1.0, peer="b"))
        tracer.emit(StallStarted(time=2.0, peer="a", segment=0))
        counts = event_counts(tracer.events())
        assert counts["swarm"]["PeerJoined"] == 2
        assert counts["player"]["StallStarted"] == 1
