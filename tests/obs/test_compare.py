"""``repro compare``: delta scoring, noise widening, digest guards."""

from __future__ import annotations

import pytest

from repro.errors import ArtifactError
from repro.obs.compare import (
    DEFAULT_METRICS,
    compare_artifacts,
    mean_delta_pct,
    render_comparison,
)


def make_case(
    case_id,
    best_s=1.0,
    rounds=1,
    stdev_s=0.0,
    events_per_sec=None,
    digest=None,
    metrics=None,
):
    mean_s = max(best_s, best_s + stdev_s)
    return {
        "id": case_id,
        "timing": {
            "rounds": rounds,
            "warmup": 0,
            "best_s": best_s,
            "mean_s": mean_s,
            "stdev_s": stdev_s,
        },
        "params": {},
        "digest": digest,
        "events_fired": None,
        "events_per_sec": events_per_sec,
        "sim_seconds": None,
        "metrics": dict(metrics or {}),
        "causes": None,
        "profile": None,
    }


def make_artifact(cases, suite="demo", quick=False, cores=4):
    return {
        "schema": "repro.bench/1",
        "suite": suite,
        "quick": quick,
        "created": "2026-08-08T00:00:00+00:00",
        "manifest": {
            "env": {
                "python": "3.12.0",
                "implementation": "CPython",
                "platform": "Linux",
                "machine": "x86_64",
                "cpu_count": cores,
                "usable_cores": cores,
            },
            "git": None,
        },
        "cases": cases,
    }


class TestVerdicts:
    def test_slower_wall_time_is_a_regression(self):
        baseline = make_artifact([make_case("c", best_s=1.0)])
        candidate = make_artifact([make_case("c", best_s=1.3)])
        comparison = compare_artifacts(
            baseline, candidate, threshold_pct=10.0
        )
        assert not comparison.ok
        (row,) = comparison.regressions
        assert row.metric == "best_s"
        assert row.delta_pct == pytest.approx(30.0)

    def test_faster_wall_time_is_an_improvement(self):
        baseline = make_artifact([make_case("c", best_s=1.0)])
        candidate = make_artifact([make_case("c", best_s=0.7)])
        comparison = compare_artifacts(baseline, candidate)
        assert comparison.ok
        (row,) = comparison.improvements
        assert row.delta_pct == pytest.approx(-30.0)

    def test_throughput_direction_is_inverted(self):
        baseline = make_artifact(
            [make_case("c", events_per_sec=1000.0)]
        )
        candidate = make_artifact(
            [make_case("c", events_per_sec=600.0)]
        )
        comparison = compare_artifacts(baseline, candidate)
        regressed = {row.metric for row in comparison.regressions}
        assert "events_per_sec" in regressed

    def test_within_threshold_is_neutral(self):
        baseline = make_artifact([make_case("c", best_s=1.0)])
        candidate = make_artifact([make_case("c", best_s=1.05)])
        comparison = compare_artifacts(
            baseline, candidate, threshold_pct=10.0
        )
        assert comparison.ok
        assert not comparison.improvements
        assert comparison.rows[0].verdict == "neutral"

    def test_identical_artifacts_are_clean(self):
        artifact = make_artifact(
            [make_case("c", best_s=1.0, events_per_sec=500.0)]
        )
        comparison = compare_artifacts(artifact, artifact)
        assert comparison.ok
        assert all(
            row.delta_pct == 0.0 for row in comparison.rows
        )


class TestNoiseWidening:
    def test_noisy_measurement_widens_the_threshold(self):
        # stderr = 0.12 / sqrt(4) = 0.06 on a 1.12 mean; 3 standard
        # errors = ~16% effective threshold, so a 15% slowdown inside
        # that noise is neutral, not a verdict.
        baseline = make_artifact(
            [make_case("c", best_s=1.0, rounds=4, stdev_s=0.12)]
        )
        candidate = make_artifact([make_case("c", best_s=1.15)])
        comparison = compare_artifacts(
            baseline, candidate, threshold_pct=10.0
        )
        assert comparison.ok
        row = comparison.rows[0]
        assert row.verdict == "neutral"
        assert row.threshold_pct > 10.0

    def test_many_rounds_shrink_the_widening(self):
        # Same 40% per-round jitter, but over 400 rounds the aggregate
        # is pinned to ~4%: a 15% slowdown must still be a regression.
        baseline = make_artifact(
            [make_case("c", best_s=1.0, rounds=400, stdev_s=0.4)]
        )
        candidate = make_artifact([make_case("c", best_s=1.15)])
        comparison = compare_artifacts(
            baseline, candidate, threshold_pct=10.0
        )
        assert not comparison.ok
        assert comparison.rows[0].threshold_pct < 15.0

    def test_single_round_contributes_no_noise(self):
        baseline = make_artifact(
            [make_case("c", best_s=1.0, rounds=1, stdev_s=0.0)]
        )
        candidate = make_artifact([make_case("c", best_s=1.15)])
        comparison = compare_artifacts(
            baseline, candidate, threshold_pct=10.0
        )
        assert not comparison.ok


class TestComparability:
    def test_digest_mismatch_is_noted_not_scored(self):
        baseline = make_artifact(
            [make_case("c", best_s=1.0, digest="aaaa")]
        )
        candidate = make_artifact(
            [make_case("c", best_s=9.0, digest="bbbb")]
        )
        comparison = compare_artifacts(baseline, candidate)
        assert comparison.ok  # not scored, so nothing regressed
        assert not comparison.rows
        assert any("digests differ" in note for note in comparison.notes)

    def test_missing_and_added_cases_reported(self):
        baseline = make_artifact([make_case("old")])
        candidate = make_artifact([make_case("new")])
        comparison = compare_artifacts(baseline, candidate)
        assert comparison.missing == ("old",)
        assert comparison.added == ("new",)

    def test_environment_differences_are_noted(self):
        baseline = make_artifact([make_case("c")], cores=4)
        candidate = make_artifact([make_case("c")], cores=32)
        comparison = compare_artifacts(baseline, candidate)
        assert any(
            "usable_cores" in note for note in comparison.notes
        )

    def test_quick_full_mismatch_is_noted(self):
        baseline = make_artifact([make_case("c")], quick=False)
        candidate = make_artifact([make_case("c")], quick=True)
        comparison = compare_artifacts(baseline, candidate)
        assert any("quick/full" in note for note in comparison.notes)

    def test_zero_baseline_is_noted_not_scored(self):
        baseline = make_artifact([make_case("c", best_s=0.0)])
        candidate = make_artifact([make_case("c", best_s=1.0)])
        comparison = compare_artifacts(baseline, candidate)
        assert not comparison.rows
        assert any("not scored" in note for note in comparison.notes)


class TestMetricSelection:
    def test_custom_scalar_metric_path(self):
        baseline = make_artifact(
            [make_case("c", metrics={"stalls": 10.0})]
        )
        candidate = make_artifact(
            [make_case("c", metrics={"stalls": 20.0})]
        )
        comparison = compare_artifacts(
            baseline, candidate, metrics=("metrics.stalls",)
        )
        (row,) = comparison.rows
        assert row.metric == "metrics.stalls"
        assert row.verdict == "regression"

    def test_absent_metric_is_skipped(self):
        baseline = make_artifact([make_case("c")])
        candidate = make_artifact([make_case("c")])
        comparison = compare_artifacts(
            baseline, candidate, metrics=("metrics.nope",)
        )
        assert not comparison.rows

    def test_default_metrics_are_timing_and_throughput(self):
        assert DEFAULT_METRICS == ("best_s", "events_per_sec")

    def test_rejects_bad_threshold(self):
        artifact = make_artifact([make_case("c")])
        with pytest.raises(ArtifactError):
            compare_artifacts(artifact, artifact, threshold_pct=0.0)

    def test_rejects_empty_metric_list(self):
        artifact = make_artifact([make_case("c")])
        with pytest.raises(ArtifactError):
            compare_artifacts(artifact, artifact, metrics=())


class TestRendering:
    def test_regressions_shout_and_counts_line_present(self):
        baseline = make_artifact([make_case("c", best_s=1.0)])
        candidate = make_artifact([make_case("c", best_s=2.0)])
        text = render_comparison(
            compare_artifacts(baseline, candidate)
        )
        assert "REGRESSION" in text
        assert "1 regression(s), 0 improvement(s), 0 neutral" in text

    def test_notes_and_case_churn_rendered(self):
        baseline = make_artifact([make_case("old")], quick=False)
        candidate = make_artifact([make_case("new")], quick=True)
        text = render_comparison(
            compare_artifacts(baseline, candidate)
        )
        assert "(missing from candidate)" in text
        assert "(new in candidate)" in text
        assert "note: quick/full mismatch" in text

    def test_mean_delta(self):
        baseline = make_artifact(
            [make_case("a", best_s=1.0), make_case("b", best_s=1.0)]
        )
        candidate = make_artifact(
            [make_case("a", best_s=1.2), make_case("b", best_s=0.8)]
        )
        comparison = compare_artifacts(baseline, candidate)
        assert mean_delta_pct(comparison.rows) == pytest.approx(0.0)
        assert mean_delta_pct(()) is None
