"""Tests for repro.units."""

import pytest

from repro import units
from repro.errors import ConfigurationError


class TestByteHelpers:
    def test_kilobytes(self):
        assert units.kilobytes(1) == 1000

    def test_kilobytes_fractional_rounds(self):
        assert units.kilobytes(1.5) == 1500

    def test_megabytes(self):
        assert units.megabytes(2) == 2_000_000

    def test_zero_is_allowed(self):
        assert units.kilobytes(0) == 0

    def test_negative_rejected(self):
        with pytest.raises(ConfigurationError):
            units.kilobytes(-1)


class TestRateHelpers:
    def test_kbps_is_bytes_per_second(self):
        assert units.kbps(8) == pytest.approx(1000.0)

    def test_mbps(self):
        assert units.mbps(1) == pytest.approx(125_000.0)

    def test_kB_per_s(self):
        assert units.kB_per_s(128) == pytest.approx(128_000.0)

    def test_paper_video_rate(self):
        # The paper: "1 Mbps (128kB/s)" uses the 1024-adjacent rounding;
        # decimal units give 125 kB/s.
        assert units.mbps(1) / units.KILOBYTE == pytest.approx(125.0)

    def test_negative_rate_rejected(self):
        with pytest.raises(ConfigurationError):
            units.kbps(-0.1)


class TestTimeHelpers:
    def test_milliseconds(self):
        assert units.milliseconds(50) == pytest.approx(0.05)

    def test_minutes(self):
        assert units.minutes(2) == pytest.approx(120.0)

    def test_negative_time_rejected(self):
        with pytest.raises(ConfigurationError):
            units.minutes(-2)


class TestReportingHelpers:
    def test_as_kB(self):
        assert units.as_kB(128_000) == pytest.approx(128.0)

    def test_as_kB_per_s(self):
        assert units.as_kB_per_s(512_000.0) == pytest.approx(512.0)

    def test_roundtrip(self):
        assert units.as_kB_per_s(units.kB_per_s(768)) == pytest.approx(768)


class TestConstants:
    def test_mss_is_ethernet_sized(self):
        assert units.DEFAULT_MSS == 1460

    def test_bits_per_byte(self):
        assert units.BITS_PER_BYTE == 8
