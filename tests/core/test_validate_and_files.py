"""Tests for splice validation and per-segment container files."""

import dataclasses

import pytest

from repro.core.playlist import parse_m3u8, write_m3u8
from repro.core.segment_files import (
    deserialize_segment,
    serialize_segment,
    write_segment_files,
)
from repro.core.segments import SpliceResult
from repro.core.splicer import DurationSplicer, GopSplicer
from repro.core.validate import validate_splice
from repro.errors import SpliceError


@pytest.fixture(scope="module")
def splice(short_video):
    return DurationSplicer(2.0).splice(short_video)


class TestValidateSplice:
    def test_duration_splice_is_valid(self, short_video, splice):
        report = validate_splice(splice, short_video)
        assert report.valid, report.problems
        assert report.covered_frames == short_video.frame_count
        assert report.overhead_bytes == splice.overhead_bytes
        assert report.inserted_i_frames > 0

    def test_gop_splice_is_valid(self, short_video):
        gop = GopSplicer().splice(short_video)
        report = validate_splice(gop, short_video)
        assert report.valid, report.problems
        assert report.inserted_i_frames == 0
        assert report.overhead_bytes == 0

    def test_detects_missing_tail(self, short_video, splice):
        truncated = SpliceResult(
            technique="broken",
            segments=splice.segments[:-1],
            source_size=short_video.size,
        )
        report = validate_splice(truncated, short_video)
        assert not report.valid
        assert any("covers" in problem for problem in report.problems)

    def test_detects_tampered_frame(self, short_video, splice):
        victim = splice.segments[1]
        tampered_frames = list(victim.frames)
        middle = tampered_frames[2]
        tampered_frames[2] = dataclasses.replace(
            middle, size=middle.size + 1
        )
        tampered = SpliceResult(
            technique="broken",
            segments=(
                splice.segments[0],
                dataclasses.replace(
                    victim, frames=tuple(tampered_frames)
                ),
            )
            + splice.segments[2:],
            source_size=short_video.size,
        )
        report = validate_splice(tampered, short_video)
        assert not report.valid
        assert any("altered" in problem for problem in report.problems)

    def test_detects_wrong_source(self, short_video, tiny_video, splice):
        report = validate_splice(splice, tiny_video)
        assert not report.valid


class TestSegmentFiles:
    def test_roundtrip(self, splice):
        original = splice.segments[1]
        restored = deserialize_segment(serialize_segment(original))
        assert restored.index == original.index
        assert restored.inserted_i_frame == original.inserted_i_frame
        assert len(restored.frames) == len(original.frames)
        assert restored.size == original.size
        for a, b in zip(restored.frames, original.frames):
            assert a.index == b.index
            assert a.frame_type == b.frame_type
            assert a.size == b.size

    def test_roundtrip_rebases_time(self, splice):
        original = splice.segments[2]
        restored = deserialize_segment(serialize_segment(original))
        assert restored.start_pts == 0.0
        assert restored.duration == pytest.approx(
            original.duration, abs=1e-4
        )

    def test_payload_inflates_size(self, splice):
        segment = splice.segments[0]
        bare = serialize_segment(segment)
        full = serialize_segment(segment, include_payload=True)
        assert len(full) - len(bare) == segment.size

    def test_bad_magic_rejected(self, splice):
        data = bytearray(serialize_segment(splice.segments[0]))
        data[:4] = b"XXXX"
        with pytest.raises(SpliceError):
            deserialize_segment(bytes(data))

    def test_truncation_rejected(self, splice):
        data = serialize_segment(splice.segments[0])
        with pytest.raises(SpliceError):
            deserialize_segment(data[: len(data) // 2])

    def test_uris_match_playlist(self, splice):
        files = write_segment_files(splice)
        playlist = parse_m3u8(write_m3u8(splice))
        assert set(files) == {entry.uri for entry in playlist.entries}

    def test_full_asset_sizes(self, splice):
        files = write_segment_files(splice, include_payload=True)
        payload_total = sum(len(blob) for blob in files.values())
        assert payload_total > splice.total_size  # payload + tables
