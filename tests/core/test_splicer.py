"""Tests for the GOP and duration splicers."""

import random

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.splicer import DurationSplicer, GopSplicer
from repro.errors import SpliceError
from repro.video.encoder import EncoderConfig, SyntheticEncoder
from repro.video.frames import FrameType
from repro.video.scene import generate_scene_plan


def encode(duration=24.0, seed=5):
    rng = random.Random(seed)
    plan = generate_scene_plan(duration, rng)
    return SyntheticEncoder(EncoderConfig()).encode(plan, rng)


@pytest.fixture(scope="module")
def stream():
    return encode()


class TestGopSplicer:
    def test_one_segment_per_gop(self, stream):
        result = GopSplicer().splice(stream)
        assert len(result) == len(stream.gops)

    def test_zero_overhead(self, stream):
        result = GopSplicer().splice(stream)
        assert result.overhead_bytes == 0
        assert result.total_size == stream.size

    def test_name(self):
        assert GopSplicer().name == "gop"
        assert GopSplicer(gops_per_segment=3).name == "gop-x3"

    def test_grouping(self, stream):
        result = GopSplicer(gops_per_segment=2).splice(stream)
        expected = (len(stream.gops) + 1) // 2
        assert len(result) == expected
        assert result.total_size == stream.size

    def test_invalid_grouping_rejected(self):
        with pytest.raises(SpliceError):
            GopSplicer(gops_per_segment=0)

    def test_segments_cover_stream(self, stream):
        result = GopSplicer().splice(stream)
        assert result.duration == pytest.approx(stream.duration)

    def test_no_inserted_frames(self, stream):
        result = GopSplicer().splice(stream)
        assert not any(s.inserted_i_frame for s in result.segments)


class TestDurationSplicer:
    def test_segment_count(self, stream):
        result = DurationSplicer(4.0).splice(stream)
        assert len(result) == 6  # 24 s / 4 s

    def test_name(self):
        assert DurationSplicer(4.0).name == "duration-4s"
        assert DurationSplicer(0.5).name == "duration-0.5s"

    def test_non_positive_duration_rejected(self):
        with pytest.raises(SpliceError):
            DurationSplicer(0.0)

    def test_segments_are_frame_accurate(self, stream):
        result = DurationSplicer(2.0).splice(stream)
        for segment in result.segments[:-1]:
            assert segment.duration == pytest.approx(2.0, abs=0.05)

    def test_every_segment_starts_with_i(self, stream):
        result = DurationSplicer(2.0).splice(stream)
        for segment in result.segments:
            assert segment.frames[0].frame_type is FrameType.I

    def test_overhead_is_positive(self, stream):
        result = DurationSplicer(2.0).splice(stream)
        assert result.overhead_bytes > 0

    def test_shorter_segments_cost_more(self, stream):
        two = DurationSplicer(2.0).splice(stream)
        eight = DurationSplicer(8.0).splice(stream)
        assert two.overhead_ratio > eight.overhead_ratio

    def test_overhead_matches_inserted_frames(self, stream):
        result = DurationSplicer(2.0).splice(stream)
        per_segment = sum(s.overhead for s in result.segments)
        assert per_segment == result.overhead_bytes

    def test_covers_whole_stream_duration(self, stream):
        result = DurationSplicer(4.0).splice(stream)
        assert result.duration == pytest.approx(stream.duration)

    def test_frame_count_preserved(self, stream):
        result = DurationSplicer(4.0).splice(stream)
        total = sum(len(s.frames) for s in result.segments)
        assert total == stream.frame_count

    def test_inserted_i_frame_uses_gop_i_size(self, stream):
        result = DurationSplicer(2.0).splice(stream)
        gop_i_sizes = {}
        for gop in stream.gops:
            for frame in gop.frames:
                gop_i_sizes[frame.index] = gop.i_frame.size
        for segment in result.segments:
            if segment.inserted_i_frame:
                first = segment.frames[0]
                assert first.size == gop_i_sizes[first.index]

    def test_cut_on_existing_i_frame_adds_nothing(self, stream):
        # The very first segment starts on the stream's real I-frame.
        result = DurationSplicer(4.0).splice(stream)
        assert not result.segments[0].inserted_i_frame

    @settings(max_examples=10, deadline=None)
    @given(
        duration=st.sampled_from([1.0, 2.0, 3.0, 4.0, 6.0]),
        seed=st.integers(min_value=0, max_value=2**10),
    )
    def test_property_partition(self, duration, seed):
        """Segments partition the stream: every frame exactly once."""
        source = encode(duration=12.0, seed=seed)
        result = DurationSplicer(duration).splice(source)
        indices = [
            frame.index
            for segment in result.segments
            for frame in segment.frames
        ]
        assert indices == list(range(source.frame_count))


class TestSplicerComparisons:
    def test_gop_and_duration_cover_same_playtime(self, stream):
        gop = GopSplicer().splice(stream)
        duration = DurationSplicer(4.0).splice(stream)
        assert gop.duration == pytest.approx(duration.duration)

    def test_gop_size_variance_exceeds_duration_splicing(self, stream):
        gop_sizes = GopSplicer().splice(stream).segment_sizes()
        dur_sizes = DurationSplicer(2.0).splice(stream).segment_sizes()

        def spread(sizes):
            return max(sizes) / max(1, min(sizes))

        assert spread(gop_sizes) > spread(dur_sizes)
