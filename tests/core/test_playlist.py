"""Tests for HLS playlist generation/parsing."""

import pytest

from repro.core.playlist import (
    MediaPlaylist,
    parse_m3u8,
    write_m3u8,
)
from repro.core.splicer import DurationSplicer, GopSplicer
from repro.errors import SpliceError


@pytest.fixture(scope="module")
def splice(short_video):
    return DurationSplicer(4.0).splice(short_video)


class TestWriteM3u8:
    def test_header_and_end(self, splice):
        text = write_m3u8(splice)
        lines = text.splitlines()
        assert lines[0] == "#EXTM3U"
        assert lines[-1] == "#EXT-X-ENDLIST"

    def test_one_extinf_per_segment(self, splice):
        text = write_m3u8(splice)
        assert text.count("#EXTINF:") == len(splice)

    def test_target_duration_covers_longest_segment(self, splice):
        playlist = parse_m3u8(write_m3u8(splice))
        longest = max(splice.segment_durations())
        assert playlist.target_duration >= longest

    def test_uri_template(self, splice):
        text = write_m3u8(splice, uri_template="chunk-{index}.mp4")
        assert "chunk-0.mp4" in text

    def test_gop_splice_also_serializes(self, short_video):
        gop = GopSplicer().splice(short_video)
        playlist = parse_m3u8(write_m3u8(gop))
        assert len(playlist.entries) == len(gop)


class TestParseM3u8:
    def test_roundtrip_durations(self, splice):
        playlist = parse_m3u8(write_m3u8(splice))
        assert len(playlist.entries) == len(splice)
        for entry, duration in zip(
            playlist.entries, splice.segment_durations()
        ):
            assert entry.duration == pytest.approx(duration, abs=1e-4)
        assert playlist.total_duration == pytest.approx(
            splice.duration, abs=1e-2
        )

    def test_vod_flag(self, splice):
        assert parse_m3u8(write_m3u8(splice)).ended

    def test_missing_header_rejected(self):
        with pytest.raises(SpliceError):
            parse_m3u8("#EXT-X-VERSION:3\n")

    def test_missing_target_duration_rejected(self):
        with pytest.raises(SpliceError):
            parse_m3u8("#EXTM3U\n#EXTINF:4.0,\nseg.ts\n")

    def test_uri_without_extinf_rejected(self):
        with pytest.raises(SpliceError):
            parse_m3u8(
                "#EXTM3U\n#EXT-X-TARGETDURATION:4\nseg.ts\n"
            )

    def test_dangling_extinf_rejected(self):
        with pytest.raises(SpliceError):
            parse_m3u8(
                "#EXTM3U\n#EXT-X-TARGETDURATION:4\n#EXTINF:4.0,\n"
            )

    def test_malformed_duration_rejected(self):
        with pytest.raises(SpliceError):
            parse_m3u8(
                "#EXTM3U\n#EXT-X-TARGETDURATION:4\n"
                "#EXTINF:abc,\nseg.ts\n"
            )

    def test_unknown_tags_ignored(self):
        playlist = parse_m3u8(
            "#EXTM3U\n#EXT-X-TARGETDURATION:4\n"
            "#EXT-X-SOMETHING:new\n#EXTINF:4.0,\nseg.ts\n"
            "#EXT-X-ENDLIST\n"
        )
        assert len(playlist.entries) == 1

    def test_media_sequence_parsed(self):
        playlist = parse_m3u8(
            "#EXTM3U\n#EXT-X-TARGETDURATION:4\n"
            "#EXT-X-MEDIA-SEQUENCE:17\n#EXTINF:4.0,\nseg.ts\n"
        )
        assert playlist.media_sequence == 17
        assert not playlist.ended
