"""Tests for the download-pool policies (Eq. 1)."""

import math

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.policy import (
    AdaptivePoolPolicy,
    FixedPoolPolicy,
    adaptive_pool_size,
)
from repro.errors import ConfigurationError


class TestEquationOne:
    def test_paper_example(self):
        # B = 256 kB/s, T = 8 s, W = 512 kB -> k = 4
        assert adaptive_pool_size(256_000, 8.0, 512_000) == 4

    def test_floor_semantics(self):
        assert adaptive_pool_size(100, 9.9, 1000) == 0 or True
        assert adaptive_pool_size(100, 9.9, 1000) == max(
            math.floor(100 * 9.9 / 1000), 1
        )

    def test_zero_buffer_gives_one(self):
        """At startup / after a stall T = 0 -> download one segment."""
        assert adaptive_pool_size(1_000_000, 0.0, 500_000) == 1

    def test_small_product_gives_one(self):
        """B*T < W -> still one segment (the paper's floor-at-1)."""
        assert adaptive_pool_size(100_000, 1.0, 500_000) == 1

    def test_scales_with_bandwidth(self):
        assert adaptive_pool_size(
            512_000, 8.0, 512_000
        ) == 2 * adaptive_pool_size(256_000, 8.0, 512_000)

    def test_scales_inverse_with_segment_size(self):
        small = adaptive_pool_size(256_000, 8.0, 256_000)
        large = adaptive_pool_size(256_000, 8.0, 512_000)
        assert small == 2 * large

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            adaptive_pool_size(-1, 1.0, 1000)

    def test_negative_buffer_rejected(self):
        with pytest.raises(ConfigurationError):
            adaptive_pool_size(1000, -1.0, 1000)

    def test_zero_segment_rejected(self):
        with pytest.raises(ConfigurationError):
            adaptive_pool_size(1000, 1.0, 0)

    @given(
        bandwidth=st.floats(min_value=0, max_value=1e9),
        buffered=st.floats(min_value=0, max_value=1e4),
        segment=st.floats(min_value=1, max_value=1e9),
    )
    def test_property_matches_formula(self, bandwidth, buffered, segment):
        expected = max(math.floor(bandwidth * buffered / segment), 1)
        assert adaptive_pool_size(bandwidth, buffered, segment) == expected

    @given(
        bandwidth=st.floats(min_value=0, max_value=1e9),
        buffered=st.floats(min_value=0, max_value=1e4),
        segment=st.floats(min_value=1, max_value=1e9),
    )
    def test_property_at_least_one(self, bandwidth, buffered, segment):
        assert adaptive_pool_size(bandwidth, buffered, segment) >= 1


class TestAdaptivePoolPolicy:
    def test_name(self):
        assert AdaptivePoolPolicy().name == "adaptive"

    def test_delegates_to_formula(self):
        policy = AdaptivePoolPolicy()
        assert policy.pool_size(256_000, 8.0, 512_000) == 4

    def test_cap_applies(self):
        policy = AdaptivePoolPolicy(max_pool=2)
        assert policy.pool_size(1_000_000, 100.0, 1_000) == 2

    def test_cap_none_uncapped(self):
        policy = AdaptivePoolPolicy()
        assert policy.max_pool is None
        assert policy.pool_size(1_000_000, 100.0, 1_000) == 100_000

    def test_invalid_cap_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptivePoolPolicy(max_pool=0)


class TestFixedPoolPolicy:
    def test_name(self):
        assert FixedPoolPolicy(4).name == "fixed-4"

    def test_constant_regardless_of_inputs(self):
        policy = FixedPoolPolicy(8)
        assert policy.pool_size(1, 0.0, 1) == 8
        assert policy.pool_size(1e9, 1e4, 1) == 8

    def test_size_property(self):
        assert FixedPoolPolicy(2).size == 2

    def test_invalid_size_rejected(self):
        with pytest.raises(ConfigurationError):
            FixedPoolPolicy(0)

    def test_validates_inputs_like_adaptive(self):
        with pytest.raises(ConfigurationError):
            FixedPoolPolicy(2).pool_size(100, -1.0, 100)
