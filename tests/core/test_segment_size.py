"""Tests for segment sizing and the adaptive duration planner."""

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.core.segment_size import (
    AdaptiveDurationPlanner,
    max_cdn_segment_size,
    predicted_download_time,
)
from repro.errors import ConfigurationError
from repro.units import kB_per_s


class TestMaxCdnSegmentSize:
    def test_formula(self):
        assert max_cdn_segment_size(256_000, 8.0) == pytest.approx(
            2_048_000
        )

    def test_zero_buffer(self):
        assert max_cdn_segment_size(256_000, 0.0) == 0.0

    def test_negative_bandwidth_rejected(self):
        with pytest.raises(ConfigurationError):
            max_cdn_segment_size(-1, 1.0)

    def test_negative_buffer_rejected(self):
        with pytest.raises(ConfigurationError):
            max_cdn_segment_size(1, -1.0)

    @given(
        bandwidth=st.floats(min_value=0, max_value=1e9),
        buffered=st.floats(min_value=0, max_value=1e4),
    )
    def test_property_is_product(self, bandwidth, buffered):
        assert max_cdn_segment_size(bandwidth, buffered) == pytest.approx(
            bandwidth * buffered
        )


class TestPredictedDownloadTime:
    def test_includes_handshake(self):
        lossless = predicted_download_time(
            1, 1e9, rtt=0.1, loss_rate=0.0
        )
        assert lossless >= 0.15  # 1.5 RTT handshake

    def test_loss_inflates_handshake(self):
        clean = predicted_download_time(1, 1e9, rtt=0.1, loss_rate=0.0)
        lossy = predicted_download_time(1, 1e9, rtt=0.1, loss_rate=0.5)
        assert lossy > clean

    def test_large_transfer_is_rate_bound(self):
        size = 10_000_000
        time = predicted_download_time(
            size, 1_000_000, rtt=0.01, loss_rate=0.0
        )
        assert time == pytest.approx(size / 1_000_000, rel=0.1)

    def test_mathis_cap_binds_under_loss(self):
        # High bandwidth but lossy: the Mathis ceiling dominates.
        capped = predicted_download_time(
            1_000_000, 1e9, rtt=0.05, loss_rate=0.05
        )
        clean = predicted_download_time(
            1_000_000, 1e9, rtt=0.05, loss_rate=0.0
        )
        assert capped > 2 * clean

    def test_monotone_in_size(self):
        small = predicted_download_time(10_000, 1e6, 0.05, 0.01)
        large = predicted_download_time(1_000_000, 1e6, 0.05, 0.01)
        assert large > small

    def test_invalid_inputs_rejected(self):
        with pytest.raises(ConfigurationError):
            predicted_download_time(0, 1e6, 0.05)
        with pytest.raises(ConfigurationError):
            predicted_download_time(1, 0, 0.05)
        with pytest.raises(ConfigurationError):
            predicted_download_time(1, 1e6, 0)
        with pytest.raises(ConfigurationError):
            predicted_download_time(1, 1e6, 0.05, loss_rate=1.0)

    @given(
        size=st.floats(min_value=1e3, max_value=1e8),
        bandwidth=st.floats(min_value=1e4, max_value=1e8),
    )
    def test_property_at_least_ideal_time(self, size, bandwidth):
        """No transfer beats size/bandwidth plus the handshake."""
        time = predicted_download_time(size, bandwidth, 0.05, 0.0)
        assert time >= size / bandwidth


class TestAdaptiveDurationPlanner:
    def test_picks_long_segments_below_bitrate(self):
        planner = AdaptiveDurationPlanner(bitrate=950_000.0)
        choice = planner.pick(kB_per_s(96))
        assert choice.duration == 8.0
        assert not choice.sustainable

    def test_picks_moderate_at_the_margin(self):
        planner = AdaptiveDurationPlanner(bitrate=950_000.0)
        assert planner.pick(kB_per_s(128)).duration == 4.0

    def test_picks_short_segments_with_headroom(self):
        planner = AdaptiveDurationPlanner(bitrate=950_000.0)
        choice = planner.pick(kB_per_s(1024))
        assert choice.duration == 1.0
        assert choice.sustainable

    def test_startup_grows_with_duration(self):
        planner = AdaptiveDurationPlanner(bitrate=950_000.0)
        choices = planner.evaluate(kB_per_s(256))
        startups = [choice.startup_time for choice in choices]
        assert startups == sorted(startups)

    def test_evaluate_covers_all_candidates(self):
        planner = AdaptiveDurationPlanner(
            candidate_durations=(2.0, 4.0), bitrate=950_000.0
        )
        assert len(planner.evaluate(kB_per_s(256))) == 2

    def test_empty_candidates_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveDurationPlanner(candidate_durations=())

    def test_non_positive_candidate_rejected(self):
        with pytest.raises(ConfigurationError):
            AdaptiveDurationPlanner(candidate_durations=(0.0,))

    def test_zero_bandwidth_rejected(self):
        planner = AdaptiveDurationPlanner()
        with pytest.raises(ConfigurationError):
            planner.evaluate(0.0)

    def test_sustainable_property_threshold(self):
        planner = AdaptiveDurationPlanner(bitrate=950_000.0)
        for choice in planner.evaluate(kB_per_s(1024)):
            assert choice.sustainable == (choice.utilization >= 1.0)
