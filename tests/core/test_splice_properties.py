"""Property-based splicer validation over random videos.

For arbitrary (seed, duration, technique) combinations, every splicer
output must pass :func:`repro.core.validate.validate_splice` — the
strongest end-to-end invariant of the splicing layer.
"""

import random

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core.splicer import DurationSplicer, GopSplicer
from repro.core.validate import validate_splice
from repro.video.encoder import EncoderConfig, SyntheticEncoder
from repro.video.scene import generate_scene_plan


def encode(seed: int, duration: float, open_gop: bool = False):
    rng = random.Random(seed)
    plan = generate_scene_plan(duration, rng)
    config = EncoderConfig(
        keyframe_interval=75, open_gop=open_gop
    )
    return SyntheticEncoder(config).encode(plan, rng)


class TestSpliceValidityProperties:
    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**12),
        duration=st.sampled_from([3.0, 7.0, 11.0]),
        segment_duration=st.sampled_from([0.5, 1.0, 2.0, 4.0]),
    )
    def test_duration_splices_always_validate(
        self, seed, duration, segment_duration
    ):
        stream = encode(seed, duration)
        splice = DurationSplicer(segment_duration).splice(stream)
        report = validate_splice(splice, stream)
        assert report.valid, report.problems

    @settings(max_examples=25, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**12),
        duration=st.sampled_from([3.0, 7.0, 11.0]),
        open_gop=st.booleans(),
        grouping=st.integers(min_value=1, max_value=4),
    )
    def test_gop_splices_always_validate(
        self, seed, duration, open_gop, grouping
    ):
        stream = encode(seed, duration, open_gop=open_gop)
        splice = GopSplicer(gops_per_segment=grouping).splice(stream)
        report = validate_splice(splice, stream)
        assert report.valid, report.problems
        assert report.overhead_bytes == 0

    @settings(max_examples=15, deadline=None)
    @given(
        seed=st.integers(min_value=0, max_value=2**12),
        segment_duration=st.sampled_from([0.5, 2.0]),
    )
    def test_overhead_only_from_inserted_heads(
        self, seed, segment_duration
    ):
        stream = encode(seed, 7.0)
        splice = DurationSplicer(segment_duration).splice(stream)
        report = validate_splice(splice, stream)
        assert report.valid
        per_segment = sum(s.overhead for s in splice.segments)
        assert report.overhead_bytes == per_segment
