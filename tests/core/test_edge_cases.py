"""Edge cases across the core layer: degenerate videos and splices."""

import random

import pytest

from repro.core.policy import adaptive_pool_size
from repro.core.splicer import DurationSplicer, GopSplicer
from repro.video.bitstream import Bitstream
from repro.video.encoder import EncoderConfig, SyntheticEncoder
from repro.video.frames import Frame, FrameType
from repro.video.gop import Gop
from repro.video.scene import generate_scene_plan


def single_frame_stream(size=10_000):
    frame = Frame(
        index=0,
        frame_type=FrameType.I,
        size=size,
        duration=0.04,
        pts=0.0,
    )
    return Bitstream((Gop(frames=(frame,)),))


def tiny_stream(duration=1.0, seed=2):
    rng = random.Random(seed)
    plan = generate_scene_plan(duration, rng)
    return SyntheticEncoder(EncoderConfig()).encode(plan, rng)


class TestDegenerateVideos:
    def test_single_frame_gop_splice(self):
        result = GopSplicer().splice(single_frame_stream())
        assert len(result) == 1
        assert result.overhead_bytes == 0

    def test_single_frame_duration_splice(self):
        result = DurationSplicer(4.0).splice(single_frame_stream())
        assert len(result) == 1
        assert not result.segments[0].inserted_i_frame

    def test_duration_longer_than_video(self):
        stream = tiny_stream(duration=1.0)
        result = DurationSplicer(60.0).splice(stream)
        assert len(result) == 1
        assert result.duration == pytest.approx(stream.duration)

    def test_sub_second_duration_splicing(self):
        stream = tiny_stream(duration=2.0)
        result = DurationSplicer(0.2).splice(stream)
        assert len(result) == 10
        total = sum(len(s.frames) for s in result.segments)
        assert total == stream.frame_count

    def test_splice_duration_equal_to_video(self):
        stream = tiny_stream(duration=2.0)
        result = DurationSplicer(2.0).splice(stream)
        assert len(result) == 1

    def test_gop_grouping_larger_than_stream(self):
        stream = tiny_stream(duration=2.0)
        result = GopSplicer(gops_per_segment=10_000).splice(stream)
        assert len(result) == 1
        assert result.total_size == stream.size


class TestEquationOneExtremes:
    def test_huge_values(self):
        assert adaptive_pool_size(1e12, 1e6, 1.0) == int(1e18)

    def test_tiny_bandwidth(self):
        assert adaptive_pool_size(1e-9, 1e-9, 1e9) == 1

    def test_exact_multiple_boundary(self):
        # B*T/W exactly 3.0 -> floor is 3.
        assert adaptive_pool_size(300.0, 1.0, 100.0) == 3

    def test_just_below_boundary(self):
        assert adaptive_pool_size(299.999, 1.0, 100.0) == 2


class TestSplicerDeterminism:
    def test_same_stream_same_splice(self):
        stream = tiny_stream(duration=3.0)
        first = DurationSplicer(1.0).splice(stream)
        second = DurationSplicer(1.0).splice(stream)
        assert first.segment_sizes() == second.segment_sizes()
        assert first.overhead_bytes == second.overhead_bytes
