"""Tests for the Segment / SpliceResult model."""

import pytest

from repro.errors import SpliceError
from repro.core.segments import Segment, SpliceResult
from repro.video.frames import Frame, FrameType


def frames_for(pattern: str, start_index=0, start_pts=0.0):
    frames = []
    for offset, letter in enumerate(pattern):
        frames.append(
            Frame(
                index=start_index + offset,
                frame_type=FrameType(letter),
                size=9_000 if letter == "I" else 3_000,
                duration=0.04,
                pts=start_pts + offset * 0.04,
            )
        )
    return tuple(frames)


def make_segment(index=0, pattern="IPP", start_pts=0.0, **kwargs):
    return Segment(
        index=index,
        frames=frames_for(pattern, start_index=0, start_pts=start_pts),
        **kwargs,
    )


class TestSegmentValidation:
    def test_valid(self):
        assert make_segment().size == 15_000

    def test_negative_index_rejected(self):
        with pytest.raises(SpliceError):
            make_segment(index=-1)

    def test_empty_rejected(self):
        with pytest.raises(SpliceError):
            Segment(index=0, frames=())

    def test_must_start_with_i_frame(self):
        with pytest.raises(SpliceError):
            make_segment(pattern="PPP")


class TestSegmentProperties:
    def test_duration(self):
        assert make_segment(pattern="IPPP").duration == pytest.approx(0.16)

    def test_start_end_pts(self):
        segment = make_segment(start_pts=2.0)
        assert segment.start_pts == pytest.approx(2.0)
        assert segment.end_pts == pytest.approx(2.12)

    def test_overhead_zero_without_insertion(self):
        assert make_segment().overhead == 0

    def test_overhead_counts_inserted_i_frame(self):
        segment = make_segment(
            inserted_i_frame=True, original_first_frame_size=3_000
        )
        assert segment.overhead == 9_000 - 3_000

    def test_original_size_defaults_to_first_frame(self):
        segment = make_segment()
        assert segment.original_first_frame_size == 9_000


def make_result(n_segments=3, technique="test"):
    segments = []
    pts = 0.0
    for index in range(n_segments):
        frames = frames_for("IPP", start_pts=pts)
        segments.append(Segment(index=index, frames=frames))
        pts = frames[-1].end_pts
    source = sum(segment.size for segment in segments)
    return SpliceResult(
        technique=technique, segments=tuple(segments), source_size=source
    )


class TestSpliceResultValidation:
    def test_empty_rejected(self):
        with pytest.raises(SpliceError):
            SpliceResult(technique="x", segments=(), source_size=0)

    def test_indices_must_be_contiguous(self):
        good = make_result(2)
        with pytest.raises(SpliceError):
            SpliceResult(
                technique="x",
                segments=(good.segments[1],),
                source_size=1,
            )

    def test_segments_must_abut(self):
        a = make_segment(index=0, start_pts=0.0)
        b = make_segment(index=1, start_pts=99.0)
        with pytest.raises(SpliceError):
            SpliceResult(technique="x", segments=(a, b), source_size=1)


class TestSpliceResultProperties:
    def test_len(self):
        assert len(make_result(4)) == 4

    def test_total_size(self):
        assert make_result(2).total_size == 2 * 15_000

    def test_zero_overhead(self):
        result = make_result(3)
        assert result.overhead_bytes == 0
        assert result.overhead_ratio == 0.0

    def test_overhead_ratio(self):
        result = make_result(2)
        inflated = SpliceResult(
            technique="x",
            segments=result.segments,
            source_size=result.total_size - 3_000,
        )
        assert inflated.overhead_bytes == 3_000
        assert inflated.overhead_ratio == pytest.approx(
            3_000 / (result.total_size - 3_000)
        )

    def test_zero_source_size_ratio(self):
        result = SpliceResult(
            technique="x",
            segments=make_result(1).segments,
            source_size=0,
        )
        assert result.overhead_ratio == 0.0

    def test_duration(self):
        assert make_result(2).duration == pytest.approx(0.24)

    def test_segment_sizes_and_durations(self):
        result = make_result(3)
        assert result.segment_sizes() == [15_000] * 3
        assert result.segment_durations() == pytest.approx([0.12] * 3)

    def test_mean_segment_size(self):
        assert make_result(3).mean_segment_size() == pytest.approx(15_000)
