"""Tests for the hybrid CDN mode."""

import pytest

from repro.cdn import HybridConfig, HybridSession, cdn_segment_duration
from repro.core.splicer import DurationSplicer
from repro.errors import ConfigurationError
from repro.p2p.swarm import SwarmConfig
from repro.units import kB_per_s


def swarm_config(**overrides):
    defaults = dict(
        bandwidth=kB_per_s(512),
        seeder_bandwidth=kB_per_s(2048),
        n_leechers=3,
        seed=5,
        join_stagger=1.0,
        max_time=600.0,
    )
    defaults.update(overrides)
    return SwarmConfig(**defaults)


class TestCdnSegmentDuration:
    def test_picks_largest_admissible(self):
        # bitrate 1 Mbps = 125 kB/s; B = 200 kB/s, T = 4 s -> limit
        # 800 kB; 4 s segment = 500 kB fits, 8 s = 1000 kB does not.
        duration = cdn_segment_duration(
            1_000_000, kB_per_s(200), target_buffer=4.0
        )
        assert duration == 4.0

    def test_all_admissible_picks_max(self):
        duration = cdn_segment_duration(
            1_000_000, kB_per_s(1024), target_buffer=8.0
        )
        assert duration == 8.0

    def test_none_admissible_falls_back_to_min(self):
        duration = cdn_segment_duration(
            10_000_000, kB_per_s(64), target_buffer=1.0
        )
        assert duration == 1.0

    def test_invalid_inputs(self):
        with pytest.raises(ConfigurationError):
            cdn_segment_duration(0, 1000, 1.0)
        with pytest.raises(ConfigurationError):
            cdn_segment_duration(1_000_000, 1000, 1.0, candidates=())


class TestHybridSession:
    def test_forces_one_at_a_time(self, short_video):
        splice = DurationSplicer(4.0).splice(short_video)
        session = HybridSession(
            splice, HybridConfig(swarm=swarm_config())
        )
        leecher = session.swarm.leechers[0]
        assert "seeder" in leecher.config.cdn_sources

    def test_runs_to_completion(self, short_video):
        splice = DurationSplicer(4.0).splice(short_video)
        session = HybridSession(
            splice, HybridConfig(swarm=swarm_config())
        )
        result = session.run()
        assert result.all_finished

    def test_auto_duration_resplices(self, short_video):
        session = HybridSession(
            short_video,
            HybridConfig(
                swarm=swarm_config(), auto_segment_duration=True
            ),
        )
        assert session.segment_duration > 0
        assert len(session.splice) >= 1

    def test_auto_duration_requires_bitstream(self, short_video):
        splice = DurationSplicer(4.0).splice(short_video)
        with pytest.raises(ConfigurationError):
            HybridSession(
                splice,
                HybridConfig(
                    swarm=swarm_config(), auto_segment_duration=True
                ),
            )

    def test_plain_mode_requires_splice(self, short_video):
        with pytest.raises(ConfigurationError):
            HybridSession(
                short_video, HybridConfig(swarm=swarm_config())
            )

    def test_invalid_target_buffer_rejected(self):
        with pytest.raises(ConfigurationError):
            HybridConfig(swarm=swarm_config(), target_buffer=0)

    def test_at_most_one_inflight_to_cdn(self, short_video):
        splice = DurationSplicer(2.0).splice(short_video)
        session = HybridSession(
            splice, HybridConfig(swarm=swarm_config())
        )
        swarm = session.swarm

        def check():
            for leecher in swarm.leechers:
                to_cdn = [
                    s
                    for s in leecher.inflight.values()
                    if s == "seeder"
                ]
                assert len(to_cdn) <= 1

        for t in (0.5, 1.0, 2.0, 4.0, 8.0):
            swarm.sim.schedule(t, check)
        session.run()
