"""Tests for the exception hierarchy."""

import pytest

from repro import errors


ALL_ERRORS = [
    errors.ConfigurationError,
    errors.VideoError,
    errors.BitstreamError,
    errors.SpliceError,
    errors.NetworkError,
    errors.SimulationError,
    errors.RoutingError,
    errors.LinkError,
    errors.ProtocolError,
    errors.WireFormatError,
    errors.HandshakeError,
    errors.PeerError,
    errors.SwarmError,
    errors.PlaybackError,
    errors.RSpecError,
    errors.ExperimentError,
]


@pytest.mark.parametrize("error_type", ALL_ERRORS)
def test_all_derive_from_repro_error(error_type):
    assert issubclass(error_type, errors.ReproError)


def test_bitstream_error_is_video_error():
    assert issubclass(errors.BitstreamError, errors.VideoError)


def test_simulation_error_is_network_error():
    assert issubclass(errors.SimulationError, errors.NetworkError)


def test_wire_format_error_is_protocol_error():
    assert issubclass(errors.WireFormatError, errors.ProtocolError)


def test_catching_base_catches_subsystem_errors():
    with pytest.raises(errors.ReproError):
        raise errors.SpliceError("boom")


def test_errors_carry_messages():
    try:
        raise errors.LinkError("capacity must be > 0")
    except errors.ReproError as exc:
        assert "capacity" in str(exc)
