"""Content digests: cross-process stability and canonical encoding."""

from __future__ import annotations

import subprocess
import sys
from dataclasses import dataclass
from pathlib import Path

import pytest

from repro.errors import ExperimentError
from repro.experiments.config import ExperimentConfig
from repro.parallel.digest import (
    DIGEST_LENGTH,
    canonical_data,
    content_digest,
)

_SRC = str(Path(__file__).resolve().parent.parent.parent / "src")


@dataclass(frozen=True)
class Spec:
    name: str
    sizes: tuple


@dataclass(frozen=True)
class OtherSpec:
    name: str
    sizes: tuple


class TestCanonicalForm:
    def test_digest_is_short_hex(self):
        digest = content_digest(("flownet", 20, "star"))
        assert len(digest) == DIGEST_LENGTH
        int(digest, 16)

    def test_dict_key_order_is_irrelevant(self):
        assert content_digest({"a": 1, "b": 2}) == content_digest(
            {"b": 2, "a": 1}
        )

    def test_set_iteration_order_is_irrelevant(self):
        assert content_digest({3, 1, 2}) == content_digest({2, 3, 1})

    def test_lists_and_tuples_are_equal(self):
        assert content_digest([1, 2]) == content_digest((1, 2))

    def test_dataclass_type_name_disambiguates(self):
        one = Spec(name="x", sizes=(1,))
        other = OtherSpec(name="x", sizes=(1,))
        assert content_digest(one) != content_digest(other)

    def test_dataclass_field_values_matter(self):
        assert content_digest(Spec("x", (1,))) != content_digest(
            Spec("x", (2,))
        )

    def test_bytes_digest_by_content(self):
        assert content_digest(b"abc") == content_digest(b"abc")
        assert content_digest(b"abc") != content_digest(b"abd")

    def test_experiment_config_digests_by_value(self):
        assert content_digest(ExperimentConfig()) == content_digest(
            ExperimentConfig()
        )
        assert content_digest(ExperimentConfig()) != content_digest(
            ExperimentConfig(n_leechers=9)
        )

    def test_deep_structures_rejected(self):
        nested = [0]
        for _ in range(40):
            nested = [nested]
        with pytest.raises(ExperimentError, match="deeper"):
            canonical_data(nested)


class TestCrossProcessStability:
    def test_subprocess_computes_the_same_digest(self):
        """The whole point: two processes agree on what a workload is.

        Python's builtin ``hash`` is salted per process — this guards
        against anything salted sneaking into the digest path.
        """
        payload = (
            "flownet",
            {"topology": "star", "n_peers": (20, 100)},
            frozenset({"incremental", "reference"}),
            ExperimentConfig(n_leechers=9, seeds=(7, 11)),
        )
        local = content_digest(payload)
        program = (
            "import sys; sys.path.insert(0, sys.argv[1]);\n"
            "from repro.parallel.digest import content_digest\n"
            "from repro.experiments.config import ExperimentConfig\n"
            "payload = ('flownet',"
            " {'topology': 'star', 'n_peers': (20, 100)},"
            " frozenset({'incremental', 'reference'}),"
            " ExperimentConfig(n_leechers=9, seeds=(7, 11)))\n"
            "print(content_digest(payload))"
        )
        proc = subprocess.run(
            [sys.executable, "-c", program, _SRC],
            capture_output=True,
            text=True,
            timeout=60,
        )
        assert proc.returncode == 0, proc.stderr
        assert proc.stdout.strip() == local
