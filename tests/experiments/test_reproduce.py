"""Tests for the consolidated reproduction run and new ablations."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.ablations import run_preroll, run_swarm_scaling
from repro.experiments.reproduce import reproduce_all


@pytest.fixture(scope="module")
def fast_config():
    return ExperimentConfig(n_leechers=3, seeds=(5,), max_time=600.0)


class TestReproduceAll:
    @pytest.fixture(scope="class")
    def report(self, short_video):
        config = ExperimentConfig(
            n_leechers=3, seeds=(5,), max_time=600.0
        )
        return reproduce_all(
            config, video=short_video, include_ablations=False
        )

    def test_contains_all_four_figures(self, report):
        assert [f.figure for f in report.figures] == [
            "fig2",
            "fig3",
            "fig4",
            "fig5",
        ]

    def test_render_includes_tables(self, report):
        text = report.render()
        assert "## fig2" in text
        assert "## fig5" in text
        assert "overhead" in text
        assert "128 kB/s" in text

    def test_elapsed_recorded(self, report):
        assert report.elapsed > 0

    def test_ablations_appended_when_requested(self, short_video):
        config = ExperimentConfig(
            n_leechers=2, seeds=(5,), max_time=600.0
        )
        report = reproduce_all(
            config, video=short_video, include_ablations=True
        )
        ids = [f.figure for f in report.figures]
        for ablation in ("A1", "A2", "A4", "A7", "A8"):
            assert ablation in ids


class TestNewAblations:
    def test_preroll_series(self, fast_config, short_video):
        result = run_preroll(
            fast_config,
            video=short_video,
            bandwidth_kb=512,
            prerolls=(1, 2),
        )
        assert set(result.series) == {"preroll 1", "preroll 2"}
        p1 = result.series["preroll 1"][0]
        p2 = result.series["preroll 2"][0]
        assert p2.startup_time >= p1.startup_time

    def test_scaling_series(self, fast_config, short_video):
        result = run_swarm_scaling(
            fast_config,
            video=short_video,
            bandwidth_kb=512,
            swarm_sizes=(2, 4),
        )
        assert set(result.series) == {"2 peers", "4 peers"}
        for cells in result.series.values():
            assert cells[0].finished_fraction == 1.0
