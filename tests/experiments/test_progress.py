"""SweepProgress reporting: live-mode gating and plain-mode lines."""

from __future__ import annotations

import io
from types import SimpleNamespace

import pytest

from repro.errors import ExperimentError
from repro.parallel.progress import (
    NULL_PROGRESS,
    PROGRESS_MODES,
    SweepProgress,
)
from repro.parallel.worker import RunOutcome


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def advance(self, seconds):
        self.now += seconds

    def __call__(self):
        return self.now


def spec(cell_index, label):
    return SimpleNamespace(
        cell_index=cell_index,
        cell=SimpleNamespace(describe=lambda: label),
    )


def ok_outcome(cell_index, seed=7, stalls=2.0):
    return RunOutcome(
        cell_index=cell_index,
        seed_index=0,
        seed=seed,
        label=f"cell-{cell_index}",
        stats=SimpleNamespace(stall_count=stalls),
    )


def failed_outcome(cell_index, seed=7):
    return RunOutcome(
        cell_index=cell_index,
        seed_index=0,
        seed=seed,
        label=f"cell-{cell_index}",
        error="ValueError: boom",
    )


def cached_outcome(cell_index, seed=7, stalls=2.0):
    return RunOutcome(
        cell_index=cell_index,
        seed_index=0,
        seed=seed,
        label=f"cell-{cell_index}",
        stats=SimpleNamespace(stall_count=stalls),
        cached=True,
    )


def plain_progress(min_interval=0.0, clock=None):
    stream = io.StringIO()
    progress = SweepProgress(
        stream=stream,
        mode="plain",
        min_interval=min_interval,
        clock=clock if clock is not None else FakeClock(),
    )
    return progress, stream


class TestModeSelection:
    def test_modes_are_exactly_live_and_plain(self):
        assert PROGRESS_MODES == ("live", "plain")

    def test_unknown_mode_rejected(self):
        with pytest.raises(ExperimentError, match="unknown progress"):
            SweepProgress(stream=io.StringIO(), mode="fancy")

    def test_negative_interval_rejected(self):
        with pytest.raises(ExperimentError, match="min_interval"):
            SweepProgress(
                stream=io.StringIO(), mode="plain", min_interval=-1.0
            )

    def test_live_mode_disabled_without_tty(self):
        progress = SweepProgress(stream=io.StringIO(), mode="live")
        assert not progress.enabled

    def test_plain_mode_enabled_without_tty(self):
        progress, _ = plain_progress()
        assert progress.enabled

    def test_null_progress_is_inert(self):
        NULL_PROGRESS.begin([spec(0, "a")])
        NULL_PROGRESS.update(ok_outcome(0))
        NULL_PROGRESS.finish()
        assert not NULL_PROGRESS.enabled


class TestPlainMode:
    def test_header_cells_and_summary(self):
        progress, stream = plain_progress()
        progress.begin([spec(0, "cell-a"), spec(1, "cell-b")])
        progress.update(ok_outcome(0, stalls=3.0))
        progress.update(ok_outcome(1, stalls=1.0))
        progress.finish()
        lines = stream.getvalue().splitlines()
        assert lines[0] == "sweep: starting 2 cells (2 runs)"
        assert "cell-a done (3.0 stalls/peer" in lines[1]
        assert lines[-1] == (
            "sweep: 2/2 cells done, 0 failed, 2/2 runs"
        )
        # Append-only: no carriage returns anywhere.
        assert "\r" not in stream.getvalue()

    def test_cell_line_waits_for_all_seeds(self):
        progress, stream = plain_progress()
        progress.begin([spec(0, "cell-a"), spec(0, "cell-a")])
        progress.update(ok_outcome(0, seed=7, stalls=4.0))
        assert "done" not in stream.getvalue()
        progress.update(ok_outcome(0, seed=11, stalls=2.0))
        # Mean over both seeds: (4 + 2) / 2.
        assert "cell-a done (3.0 stalls/peer" in stream.getvalue()

    def test_failures_print_immediately_with_error(self):
        clock = FakeClock()
        progress, stream = plain_progress(
            min_interval=60.0, clock=clock
        )
        progress.begin([spec(0, "cell-a"), spec(1, "cell-b")])
        progress.update(ok_outcome(0))  # sets _last_emit
        progress.update(failed_outcome(1))
        assert (
            "sweep: cell-b seed 7 FAILED (ValueError: boom)"
            in stream.getvalue()
        )

    def test_rate_limit_folds_intermediate_cells(self):
        clock = FakeClock()
        progress, stream = plain_progress(
            min_interval=1.0, clock=clock
        )
        progress.begin([spec(i, f"cell-{i}") for i in range(3)])
        clock.advance(1.5)
        progress.update(ok_outcome(0))  # past the interval: emits
        clock.advance(0.1)
        progress.update(ok_outcome(1))  # suppressed: too soon
        clock.advance(0.1)
        progress.update(ok_outcome(2))  # final: always emits
        lines = stream.getvalue().splitlines()
        assert any("cell-0 done" in line for line in lines)
        assert not any("cell-1 done" in line for line in lines)
        assert any("cell-2 done" in line for line in lines)

    def test_final_summary_counts_failures(self):
        progress, stream = plain_progress()
        progress.begin([spec(0, "cell-a"), spec(1, "cell-b")])
        progress.update(failed_outcome(0))
        progress.update(ok_outcome(1))
        progress.finish()
        assert (
            "sweep: 2/2 cells done, 1 failed, 2/2 runs"
            in stream.getvalue()
        )

    def test_fully_cached_cell_reports_cached(self):
        progress, stream = plain_progress()
        progress.begin([spec(0, "cell-a"), spec(1, "cell-b")])
        progress.update(cached_outcome(0, stalls=3.0))
        progress.update(ok_outcome(1, stalls=1.0))
        progress.finish()
        text = stream.getvalue()
        assert "cell-a cached (3.0 stalls/peer" in text
        assert "cell-b done (1.0 stalls/peer" in text

    def test_partially_cached_cell_reports_done(self):
        progress, stream = plain_progress()
        progress.begin([spec(0, "cell-a"), spec(0, "cell-a")])
        progress.update(cached_outcome(0, seed=7, stalls=4.0))
        progress.update(ok_outcome(0, seed=11, stalls=2.0))
        # One seed was computed: the cell was not served purely
        # from the store.
        assert "cell-a done (3.0 stalls/peer" in stream.getvalue()

    def test_summary_counts_cached_runs(self):
        progress, stream = plain_progress()
        progress.begin([spec(0, "cell-a"), spec(1, "cell-b")])
        progress.update(cached_outcome(0))
        progress.update(ok_outcome(1))
        progress.finish()
        assert (
            "sweep: 2/2 cells done, 0 failed, 1 cached, 2/2 runs"
            in stream.getvalue()
        )

    def test_all_cache_hits_shard_stays_plain_text(self):
        # A fully warm shard (every run served from the store) on a
        # non-TTY stream: cached counts appear, and the output is
        # pure append-only text with no terminal control codes.
        progress, stream = plain_progress()
        assert not stream.isatty()
        progress.begin([spec(0, "cell-a"), spec(1, "cell-b")])
        progress.update(cached_outcome(0, stalls=3.0))
        progress.update(cached_outcome(1, stalls=1.0))
        progress.finish()
        text = stream.getvalue()
        assert "cell-a cached" in text
        assert "cell-b cached" in text
        assert (
            "sweep: 2/2 cells done, 0 failed, 2 cached, 2/2 runs"
            in text
        )
        assert "\r" not in text
        assert "\x1b" not in text

    def test_summary_unchanged_without_cache(self):
        # Cacheless sweeps keep the historical summary text.
        progress, stream = plain_progress()
        progress.begin([spec(0, "cell-a")])
        progress.update(ok_outcome(0))
        progress.finish()
        assert (
            "sweep: 1/1 cells done, 0 failed, 1/1 runs"
            in stream.getvalue()
        )

    def test_executor_drives_plain_mode(
        self, tiny_video
    ):
        """End-to-end: a real (serial) sweep through a plain reporter."""
        from repro.experiments.config import ExperimentConfig
        from repro.parallel import (
            SplicerSpec,
            SweepExecutor,
            cell_for,
        )

        config = ExperimentConfig(
            n_leechers=2, seeds=(5,), max_time=300.0
        )
        cells = [
            cell_for(
                SplicerSpec("duration", 4.0),
                512,
                config,
                video=tiny_video,
                label="progress/cell",
            )
        ]
        progress, stream = plain_progress()
        SweepExecutor(jobs=1, progress=progress).run_cells(cells)
        output = stream.getvalue()
        assert "sweep: starting 1 cells (1 runs)" in output
        assert "progress/cell" in output
