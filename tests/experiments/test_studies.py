"""Smoke tests for the selection, transport, and ABR studies."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments.abr_study import AbrStudyRow, format_rows
from repro.experiments.abr_study import run as run_abr
from repro.experiments.selection_study import run as run_selection
from repro.experiments.transport_study import run as run_transport
from repro.errors import ExperimentError


@pytest.fixture(scope="module")
def fast_config():
    return ExperimentConfig(n_leechers=3, seeds=(5,), max_time=600.0)


class TestSelectionStudy:
    def test_series_cover_both_selectors(self, fast_config, short_video):
        result = run_selection(
            fast_config, video=short_video, bandwidth_kb=512
        )
        labels = set(result.series)
        assert "sequential" in labels
        assert "sequential +churn" in labels
        assert any("windowed" in label for label in labels)


class TestTransportStudy:
    def test_both_transports_run(self, fast_config, short_video):
        result = run_transport(
            fast_config, video=short_video, bandwidths_kb=(512,)
        )
        assert set(result.series) == {"tcp", "ppspp-udp"}
        for cells in result.series.values():
            assert cells[0].finished_fraction == 1.0


class TestAbrStudy:
    @pytest.fixture(scope="class")
    def rows(self):
        return run_abr(bandwidths_kb=(128,), duration=24.0, seed=3)

    def test_three_strategies_per_bandwidth(self, rows):
        assert len(rows) == 3
        prefixes = {row.strategy.split(" ")[0] for row in rows}
        assert prefixes == {"abr-buffer", "duration-adaptive", "fixed-top"}

    def test_duration_strategies_keep_top_quality(self, rows):
        top = max(row.mean_bitrate for row in rows)
        for row in rows:
            if not row.strategy.startswith("abr"):
                assert row.mean_bitrate == top

    def test_rows_are_typed(self, rows):
        assert all(isinstance(row, AbrStudyRow) for row in rows)

    def test_format_renders_all_rows(self, rows):
        text = format_rows(rows)
        assert len(text.splitlines()) == len(rows) + 1
        assert "quality" in text

    def test_empty_bandwidths_rejected(self):
        with pytest.raises(ExperimentError):
            run_abr(bandwidths_kb=())
