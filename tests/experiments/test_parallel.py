"""Parallel sweep executor: parity, isolation, and plumbing.

The load-bearing guarantee is bit-identical results at any worker
count; the parity tests compare whole ``CellResult`` dataclasses
(float equality, not approx) between ``jobs=1`` and ``jobs=4`` for
cells drawn from every figure family.
"""

from __future__ import annotations

import pytest

from repro.errors import ExperimentError, SweepError
from repro.experiments import fig2, fig4, fig5
from repro.experiments.config import ExperimentConfig
from repro.experiments.reproduce import reproduce_all
from repro.core.policy import FixedPoolPolicy
from repro.obs.context import Observability
from repro.parallel import (
    CellSpec,
    SplicerSpec,
    SquareWave,
    SweepExecutor,
    VideoSpec,
    cell_for,
    default_jobs,
)


@pytest.fixture(scope="module")
def fast_config():
    return ExperimentConfig(n_leechers=3, seeds=(5, 9), max_time=600.0)


def _figure_cells(config, video):
    """A small sweep touching every figure family's cell shape."""
    return [
        # fig2/fig3: technique x bandwidth
        cell_for(SplicerSpec("gop"), 512, config, video=video,
                 label="fig2/gop @ 512"),
        cell_for(SplicerSpec("duration", 2.0), 512, config,
                 video=video, label="fig2/duration-2s @ 512"),
        # fig4: duration splicing at another bandwidth
        cell_for(SplicerSpec("duration", 4.0), 256, config,
                 video=video, label="fig4/4 sec @ 256"),
        # fig5: fixed-pool policy override
        cell_for(SplicerSpec("duration", 4.0), 512, config,
                 policy=FixedPoolPolicy(2), video=video,
                 label="fig5/pool-2 @ 512"),
    ]


class TestParity:
    def test_serial_and_parallel_cells_identical(
        self, fast_config, short_video
    ):
        cells = _figure_cells(fast_config, short_video)
        serial = SweepExecutor(jobs=1).run_cells(cells)
        parallel = SweepExecutor(jobs=4).run_cells(cells)
        assert serial == parallel  # exact float equality

    def test_figure_run_parity(self, fast_config, short_video):
        serial = fig2.run(
            fast_config, video=short_video, bandwidths_kb=(512,)
        )
        parallel = fig2.run(
            fast_config,
            video=short_video,
            bandwidths_kb=(512,),
            executor=SweepExecutor(jobs=4),
        )
        assert serial.series == parallel.series

    def test_fig4_and_fig5_parity(self, fast_config, short_video):
        for module in (fig4, fig5):
            serial = module.run(
                fast_config, video=short_video, bandwidths_kb=(512,)
            )
            parallel = module.run(
                fast_config,
                video=short_video,
                bandwidths_kb=(512,),
                executor=SweepExecutor(jobs=4),
            )
            assert serial.series == parallel.series, module.__name__

    def test_reproduce_all_jobs_parity(self, fast_config, short_video):
        serial = reproduce_all(
            fast_config,
            video=short_video,
            include_ablations=False,
            jobs=1,
        )
        parallel = reproduce_all(
            fast_config,
            video=short_video,
            include_ablations=False,
            jobs=4,
        )
        assert serial.figures == parallel.figures
        assert serial.overhead_table == parallel.overhead_table

    def test_square_wave_and_preroll_cells_match(
        self, fast_config, short_video
    ):
        cells = [
            cell_for(
                SplicerSpec("duration", 4.0), 256, fast_config,
                video=short_video,
                square_wave=SquareWave(amplitude=0.5, period=20.0),
                label="A4",
            ),
            cell_for(
                SplicerSpec("duration", 4.0), 256, fast_config,
                video=short_video, preroll_segments=2, label="A7",
            ),
        ]
        assert (
            SweepExecutor(jobs=1).run_cells(cells)
            == SweepExecutor(jobs=2).run_cells(cells)
        )


class TestMetricsReduction:
    def test_parallel_metrics_match_serial(
        self, fast_config, short_video
    ):
        cells = _figure_cells(fast_config, short_video)[:2]
        serial_obs = Observability.metrics_only()
        SweepExecutor(jobs=1).run_cells(cells, obs=serial_obs)
        parallel_obs = Observability.metrics_only()
        SweepExecutor(jobs=2).run_cells(cells, obs=parallel_obs)

        serial_counters = {
            name: counter.value
            for name, counter in serial_obs.registry.counters().items()
        }
        parallel_counters = {
            name: counter.value
            for name, counter
            in parallel_obs.registry.counters().items()
        }
        # The parallel.cache.* memo counters describe per-process
        # cache locality — a pool of N workers legitimately misses up
        # to N times where the serial path misses once — so they are
        # compared as an invariant (one splice derivation per run on
        # any path), not for equality.
        def split(counters):
            sim = {
                name: value
                for name, value in counters.items()
                if not name.startswith("parallel.cache.")
            }
            memo = sum(
                value
                for name, value in counters.items()
                if name
                in (
                    "parallel.cache.splice.hits",
                    "parallel.cache.splice.misses",
                )
            )
            return sim, memo

        serial_sim, serial_memo = split(serial_counters)
        parallel_sim, parallel_memo = split(parallel_counters)
        assert serial_sim == parallel_sim
        assert serial_memo == parallel_memo == 4  # one per run

        # Histogram weights are time-integrals: serial mode grows one
        # running sum, parallel merges per-run subtotals, and float
        # addition is not associative — so these agree to within an
        # ULP, unlike CellResults which are bit-exact by construction.
        serial_hists = {
            name: hist.weights()
            for name, hist
            in serial_obs.registry.histograms().items()
        }
        parallel_hists = {
            name: hist.weights()
            for name, hist
            in parallel_obs.registry.histograms().items()
        }
        assert set(serial_hists) == set(parallel_hists)
        for name, weights in serial_hists.items():
            assert parallel_hists[name] == pytest.approx(weights), name

        serial_gauges = {
            name: gauge.value
            for name, gauge in serial_obs.registry.gauges().items()
        }
        parallel_gauges = {
            name: gauge.value
            for name, gauge
            in parallel_obs.registry.gauges().items()
        }
        assert serial_gauges == parallel_gauges

    def test_tracing_obs_forces_in_process(
        self, fast_config, short_video
    ):
        cells = _figure_cells(fast_config, short_video)[:1]
        obs = Observability.tracing()
        SweepExecutor(jobs=4).run_cells(cells, obs=obs)
        # A pooled run cannot feed the parent tracer; events present
        # proves the sweep ran on the caller's clock in-process.
        assert len(obs.events()) > 0


class TestCrashIsolation:
    def test_failed_run_reports_its_cell(
        self, fast_config, short_video
    ):
        good = _figure_cells(fast_config, short_video)[0]
        bad = CellSpec(
            splicer=SplicerSpec("duration", -1.0),
            bandwidth_kb=512,
            config=fast_config,
            video_spec=VideoSpec(seed=1),
            label="bad-cell",
        )
        executor = SweepExecutor(jobs=2)
        with pytest.raises(SweepError) as excinfo:
            executor.run_cells([good, bad])
        message = str(excinfo.value)
        assert "bad-cell" in message
        assert "target_duration" in message
        # The healthy cell's runs completed despite the failures.
        assert executor.stats.runs == 2 * len(fast_config.seeds)
        assert executor.stats.failures == len(fast_config.seeds)

    def test_map_runs_surfaces_outcomes(
        self, fast_config, short_video
    ):
        from repro.parallel import RunSpec

        good = _figure_cells(fast_config, short_video)[0]
        bad = CellSpec(
            splicer=SplicerSpec("duration", -1.0),
            bandwidth_kb=512,
            config=fast_config,
            video_spec=VideoSpec(seed=1),
            label="bad-cell",
        )
        specs = [
            RunSpec(cell=good, seed=5, cell_index=0, seed_index=0),
            RunSpec(cell=bad, seed=5, cell_index=1, seed_index=0),
        ]
        outcomes = SweepExecutor(jobs=2).map_runs(specs)
        assert [o.cell_index for o in outcomes] == [0, 1]
        assert outcomes[0].ok
        assert not outcomes[1].ok
        assert outcomes[1].label == "bad-cell"


class TestConfiguration:
    def test_repro_jobs_env_override(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert default_jobs() == 3
        assert SweepExecutor().jobs == 3

    def test_bad_env_value_rejected(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "zero")
        with pytest.raises(ExperimentError):
            default_jobs()

    def test_explicit_jobs_beat_env(self, monkeypatch):
        monkeypatch.setenv("REPRO_JOBS", "3")
        assert SweepExecutor(jobs=2).jobs == 2

    def test_invalid_jobs_rejected(self):
        with pytest.raises(ExperimentError):
            SweepExecutor(jobs=0)

    def test_cell_spec_needs_exactly_one_video(self, fast_config):
        with pytest.raises(ExperimentError):
            CellSpec(
                splicer=SplicerSpec("gop"),
                bandwidth_kb=256,
                config=fast_config,
            )

    def test_executor_accumulates_events(
        self, fast_config, short_video
    ):
        executor = SweepExecutor(jobs=1)
        cells = _figure_cells(fast_config, short_video)[:1]
        executor.run_cells(cells)
        assert executor.stats.events_fired > 0
        assert executor.stats.sim_seconds > 0
