"""Tests for the experiment harness (configs, runner, report)."""

import pytest

from repro.core.policy import FixedPoolPolicy
from repro.core.splicer import DurationSplicer
from repro.errors import ExperimentError
from repro.experiments.config import (
    FIG4_BANDWIDTHS_KB,
    PAPER_BANDWIDTHS_KB,
    ExperimentConfig,
    make_swarm_config,
)
from repro.experiments.report import format_cells_csv, format_figure
from repro.experiments.runner import CellResult, FigureResult, run_cell
from repro.units import kB_per_s


@pytest.fixture(scope="module")
def fast_config():
    return ExperimentConfig(n_leechers=3, seeds=(5,), max_time=600.0)


@pytest.fixture(scope="module")
def splice(short_video):
    return DurationSplicer(4.0).splice(short_video)


class TestExperimentConfig:
    def test_paper_defaults(self):
        cfg = ExperimentConfig()
        assert cfg.n_leechers == 19
        assert len(cfg.seeds) == 3  # the paper's "three times" rule
        assert cfg.peer_rtt == pytest.approx(0.05)
        assert cfg.seeder_rtt == pytest.approx(0.5)
        assert cfg.path_loss == pytest.approx(0.05)

    def test_paper_axes(self):
        assert PAPER_BANDWIDTHS_KB == (128, 256, 512, 768)
        assert FIG4_BANDWIDTHS_KB == (128, 256, 512, 1024)

    def test_empty_seeds_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(seeds=())

    def test_invalid_multiplier_rejected(self):
        with pytest.raises(ExperimentError):
            ExperimentConfig(seeder_multiplier=0)


class TestMakeSwarmConfig:
    def test_bandwidth_conversion(self):
        config = make_swarm_config(256, seed=1)
        assert config.bandwidth == pytest.approx(kB_per_s(256))
        assert config.seeder_bandwidth == pytest.approx(
            kB_per_s(256) * 8
        )

    def test_policy_override(self):
        config = make_swarm_config(
            128, seed=1, policy=FixedPoolPolicy(2)
        )
        assert config.policy.name == "fixed-2"

    def test_invalid_bandwidth_rejected(self):
        with pytest.raises(ExperimentError):
            make_swarm_config(0, seed=1)


class TestRunCell:
    def test_produces_metrics(self, splice, fast_config):
        cell = run_cell(splice, 512, fast_config)
        assert cell.bandwidth_kb == 512
        assert cell.startup_time > 0
        assert cell.finished_fraction == 1.0
        assert cell.stall_count >= 0

    def test_rounded_stalls(self, splice, fast_config):
        cell = run_cell(splice, 512, fast_config)
        assert cell.rounded_stalls == round(cell.stall_count)

    def test_deterministic(self, splice, fast_config):
        a = run_cell(splice, 512, fast_config)
        b = run_cell(splice, 512, fast_config)
        assert a == b


class TestReport:
    @pytest.fixture()
    def figure(self):
        def cell(bw, value):
            return CellResult(
                bandwidth_kb=bw,
                stall_count=value,
                stall_duration=value * 2,
                startup_time=1.0,
                seeder_bytes=0,
                peer_bytes=0,
                finished_fraction=1.0,
            )

        return FigureResult(
            figure="figX",
            title="Example",
            metric="stall_count",
            series={
                "gop": [cell(128, 12.0), cell(512, 3.0)],
                "duration-4s": [cell(128, 4.0), cell(512, 1.0)],
            },
        )

    def test_table_contains_series_and_bandwidths(self, figure):
        table = format_figure(figure)
        assert "gop" in table
        assert "duration-4s" in table
        assert "128 kB/s" in table
        assert "512 kB/s" in table
        assert "12.0" in table

    def test_metric_extraction(self, figure):
        cells = figure.series["gop"]
        assert figure.value(cells[0]) == 12.0

    def test_missing_cell_rendered_as_dash(self, figure):
        figure.series["gop"].pop()
        assert "-" in format_figure(figure)

    def test_csv_export(self, figure):
        csv = format_cells_csv(figure)
        assert csv.splitlines()[0] == "series,bandwidth_kb,value"
        assert "gop,128,12" in csv
