"""Tests for figure JSON persistence and the ASCII timeline."""

import pytest

from repro.core.splicer import DurationSplicer
from repro.errors import ExperimentError
from repro.experiments.figio import figure_from_json, figure_to_json
from repro.experiments.runner import CellResult, FigureResult
from repro.experiments.timeline import render_timeline
from repro.p2p.swarm import Swarm, SwarmConfig
from repro.units import kB_per_s


def make_figure():
    cell = CellResult(
        bandwidth_kb=128,
        stall_count=3.5,
        stall_duration=12.0,
        startup_time=2.25,
        seeder_bytes=1e6,
        peer_bytes=2e6,
        finished_fraction=1.0,
    )
    return FigureResult(
        figure="figX",
        title="Round trip",
        metric="stall_count",
        series={"gop": [cell]},
    )


class TestFigureJson:
    def test_roundtrip(self):
        original = make_figure()
        restored = figure_from_json(figure_to_json(original))
        assert restored == original

    def test_malformed_json_rejected(self):
        with pytest.raises(ExperimentError):
            figure_from_json("{not json")

    def test_missing_fields_rejected(self):
        with pytest.raises(ExperimentError):
            figure_from_json('{"figure": "f"}')

    def test_json_is_stable(self):
        assert figure_to_json(make_figure()) == figure_to_json(
            make_figure()
        )


class TestTimeline:
    @pytest.fixture(scope="class")
    def result(self, short_video):
        splice = DurationSplicer(4.0).splice(short_video)
        config = SwarmConfig(
            bandwidth=kB_per_s(256),
            seeder_bandwidth=kB_per_s(2048),
            n_leechers=3,
            seed=3,
            join_stagger=1.0,
            max_time=600.0,
        )
        return Swarm(splice, config).run()

    def test_one_row_per_peer(self, result):
        text = render_timeline(result, width=40)
        rows = [line for line in text.splitlines() if "|" in line]
        assert len(rows) == 3

    def test_rows_have_requested_width(self, result):
        text = render_timeline(result, width=40)
        for line in text.splitlines()[1:]:
            body = line.split("|")[1]
            assert len(body) == 40

    def test_finished_peers_end_with_dollar(self, result):
        # Every peer ends in a terminal state; all but the very last
        # finisher show '$' (the horizon is the last playback end, so
        # that peer's final column sits just before its own finish).
        text = render_timeline(result, width=40)
        endings = [
            line.rstrip("|")[-1] for line in text.splitlines()[1:]
        ]
        assert endings.count("$") >= len(endings) - 1
        assert all(symbol in "=$#" for symbol in endings)

    def test_later_joiners_start_blank(self, result):
        text = render_timeline(result, width=80)
        last_peer_row = text.splitlines()[-1]
        body = last_peer_row.split("|")[1]
        assert body.startswith(" ")

    def test_narrow_width_rejected(self, result):
        with pytest.raises(ExperimentError):
            render_timeline(result, width=5)
