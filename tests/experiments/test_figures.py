"""Smoke tests for the figure reproductions (reduced scale)."""

import pytest

from repro.experiments import ExperimentConfig
from repro.experiments import fig2, fig3, fig4, fig5
from repro.experiments.ablations import (
    run_adaptive_splicing,
    run_churn,
    run_overhead,
    run_segment_size_sweep,
    run_variable_bandwidth,
)


@pytest.fixture(scope="module")
def fast_config():
    return ExperimentConfig(n_leechers=3, seeds=(5,), max_time=600.0)


class TestFigureModules:
    def test_fig2_series(self, fast_config, short_video):
        result = fig2.run(
            fast_config, video=short_video, bandwidths_kb=(512,)
        )
        assert result.metric == "stall_count"
        assert set(result.series) == {
            "gop",
            "duration-2s",
            "duration-4s",
            "duration-8s",
        }

    def test_fig3_metric(self, fast_config, short_video):
        result = fig3.run(
            fast_config, video=short_video, bandwidths_kb=(512,)
        )
        assert result.metric == "stall_duration"

    def test_fig4_excludes_gop(self, fast_config, short_video):
        result = fig4.run(
            fast_config, video=short_video, bandwidths_kb=(512,)
        )
        assert result.metric == "startup_time"
        assert all("sec segment" in label for label in result.series)

    def test_fig5_policies(self, fast_config, short_video):
        result = fig5.run(
            fast_config, video=short_video, bandwidths_kb=(512,)
        )
        assert set(result.series) == {
            "Adaptive pooling",
            "Pool size: 2",
            "Pool size: 4",
            "Pool size: 8",
        }


class TestAblations:
    def test_overhead_rows(self, short_video):
        rows = run_overhead(video=short_video)
        by_name = {row.technique: row for row in rows}
        assert by_name["gop"].overhead_bytes == 0
        assert (
            by_name["duration-1s"].overhead_percent
            > by_name["duration-8s"].overhead_percent
        )

    def test_segment_size_sweep(self, fast_config, short_video):
        result = run_segment_size_sweep(
            fast_config,
            video=short_video,
            bandwidths_kb=(512,),
            durations=(2.0, 8.0),
        )
        assert set(result.series) == {"duration-2s", "duration-8s"}

    def test_churn_ablation(self, fast_config, short_video):
        result = run_churn(
            fast_config,
            video=short_video,
            bandwidth_kb=512,
            churn_fractions=(0.0, 0.5),
        )
        assert set(result.series) == {"churn 0%", "churn 50%"}

    def test_variable_bandwidth(self, fast_config, short_video):
        result = run_variable_bandwidth(
            fast_config, video=short_video, base_kb=512
        )
        assert len(result.series) == 4

    def test_adaptive_splicing(self, fast_config, short_video):
        result = run_adaptive_splicing(
            fast_config, video=short_video, bandwidths_kb=(512,)
        )
        assert set(result.series) == {"adaptive duration", "fixed 4s"}
