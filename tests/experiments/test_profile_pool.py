"""EngineProfile aggregation across process-pool workers.

A ``--jobs N`` sweep's merged profile must cover every worker's host
time: event *counts* are deterministic and must match the serial run
exactly; wall seconds are host-time measurements and only need to be
present and positive.
"""

from __future__ import annotations

import pytest

from repro.experiments.config import ExperimentConfig
from repro.obs.context import Observability
from repro.obs.profile import EngineProfile
from repro.parallel import SplicerSpec, SweepExecutor, cell_for
from repro.parallel.snapshot import (
    ProfileSnapshot,
    merge_profile,
    snapshot_profile,
)


@pytest.fixture(scope="module")
def profile_cells(request):
    config = ExperimentConfig(
        n_leechers=2, seeds=(5, 9), max_time=300.0
    )
    video = request.getfixturevalue("tiny_video")
    return [
        cell_for(
            SplicerSpec("duration", 4.0),
            512,
            config,
            video=video,
            label="profile/duration-4s @ 512",
        ),
        cell_for(
            SplicerSpec("gop"),
            512,
            config,
            video=video,
            label="profile/gop @ 512",
        ),
    ]


def run_profiled(jobs, cells):
    obs = Observability.metrics_only()
    obs.profile = EngineProfile()
    SweepExecutor(jobs=jobs).run_cells(cells, obs=obs)
    return obs.profile


class TestPoolAggregation:
    def test_pool_profile_counts_match_serial(self, profile_cells):
        serial = run_profiled(1, profile_cells)
        pooled = run_profiled(2, profile_cells)
        assert serial.counts  # the serial run actually profiled
        assert pooled.counts == serial.counts

    def test_pool_profile_has_wall_time_per_category(
        self, profile_cells
    ):
        pooled = run_profiled(2, profile_cells)
        assert set(pooled.wall_seconds) == set(pooled.counts)
        assert all(
            seconds > 0.0
            for seconds in pooled.wall_seconds.values()
        )

    def test_unprofiled_pool_sweep_ships_no_profile(
        self, profile_cells
    ):
        obs = Observability.metrics_only()
        assert obs.profile is None
        SweepExecutor(jobs=2).run_cells(profile_cells, obs=obs)
        assert obs.profile is None


class TestSnapshotPrimitives:
    def test_snapshot_round_trip(self):
        profile = EngineProfile()
        profile.merge({"net.tcp": 3}, {"net.tcp": 0.5})
        snapshot = snapshot_profile(profile)
        assert isinstance(snapshot, ProfileSnapshot)
        assert len(snapshot) == 1

        target = EngineProfile()
        merge_profile(target, snapshot)
        assert target.counts == {"net.tcp": 3}
        assert target.wall_seconds == {"net.tcp": 0.5}

    def test_merge_accumulates(self):
        profile = EngineProfile()
        snapshot = ProfileSnapshot(
            counts={"p2p.peer": 2}, wall_seconds={"p2p.peer": 0.1}
        )
        merge_profile(profile, snapshot)
        merge_profile(profile, snapshot)
        assert profile.counts == {"p2p.peer": 4}
        assert profile.wall_seconds["p2p.peer"] == pytest.approx(0.2)
