"""Sharded sweep service: plan determinism, partition, merge parity.

The protocol's guarantee: K shards run anywhere, at any worker count,
and the merged figure is byte-identical to a single-machine run —
because the plan's content digests pin the exact sweep and the merged
store serves the original per-run outcomes.
"""

from __future__ import annotations

import json
import os

import pytest

from repro.errors import StoreError
from repro.experiments import fig2, sweep_service
from repro.experiments.report import format_figure
from repro.experiments.sweep_service import (
    SWEEP_SCHEMA,
    build_plan,
    dump_plan,
    load_plan,
    merge_plan,
    run_shard,
    shard_of,
    validate_plan,
)
from repro.obs.ops import (
    OPS_SCHEMA,
    fleet_status,
    heartbeat_path,
    load_ops,
    merge_ops_path,
    ops_root,
    read_heartbeat,
    shard_ops_path,
)
from repro.parallel import ResultStore, SweepExecutor


@pytest.fixture(scope="module")
def quick_plan():
    return build_plan("2", quick=True, shards=3)


class TestPlan:
    def test_plan_is_deterministic(self, quick_plan):
        again = build_plan("2", quick=True, shards=3)
        assert again == quick_plan

    def test_plan_shape(self, quick_plan):
        assert quick_plan["schema"] == SWEEP_SCHEMA
        assert quick_plan["figure"] == "2"
        assert quick_plan["shards"] == 3
        assert quick_plan["total_runs"] == len(quick_plan["runs"])
        # quick fig2: 4 techniques x 2 bandwidths x 1 seed
        assert quick_plan["total_runs"] == 8

    def test_every_run_lands_in_exactly_one_shard(self, quick_plan):
        for run in quick_plan["runs"]:
            assert run["shard"] == shard_of(run["digest"], 3)
            assert 0 <= run["shard"] < 3

    def test_digests_are_unique(self, quick_plan):
        digests = [run["digest"] for run in quick_plan["runs"]]
        assert len(set(digests)) == len(digests)

    def test_shard_count_scales_partition(self):
        single = build_plan("2", quick=True, shards=1)
        assert {run["shard"] for run in single["runs"]} == {0}
        # Same sweep, same digests — only the partition changes.
        wide = build_plan("2", quick=True, shards=5)
        assert [run["digest"] for run in wide["runs"]] == [
            run["digest"] for run in single["runs"]
        ]

    def test_rejects_bad_shard_count(self):
        with pytest.raises(StoreError):
            build_plan("2", quick=True, shards=0)

    def test_rejects_unknown_figure(self):
        with pytest.raises(StoreError):
            build_plan("9", quick=True)

    def test_plan_round_trips_through_disk(
        self, quick_plan, tmp_path
    ):
        path = tmp_path / "plan.json"
        dump_plan(quick_plan, path)
        assert load_plan(path) == quick_plan


class TestValidation:
    def test_rejects_non_object(self):
        with pytest.raises(StoreError):
            validate_plan([1, 2])

    def test_rejects_wrong_schema(self, quick_plan):
        with pytest.raises(StoreError, match="schema"):
            validate_plan({**quick_plan, "schema": "repro.sweep/0"})

    def test_rejects_unknown_figure(self, quick_plan):
        with pytest.raises(StoreError, match="figure"):
            validate_plan({**quick_plan, "figure": "7"})

    def test_rejects_empty_runs(self, quick_plan):
        with pytest.raises(StoreError, match="no runs"):
            validate_plan({**quick_plan, "runs": []})

    def test_rejects_out_of_range_shard(self, quick_plan):
        runs = [dict(run) for run in quick_plan["runs"]]
        runs[0]["shard"] = 99
        with pytest.raises(StoreError, match="outside"):
            validate_plan({**quick_plan, "runs": runs})

    def test_load_rejects_malformed_json(self, tmp_path):
        path = tmp_path / "bad.json"
        path.write_text("{nope")
        with pytest.raises(StoreError, match="JSON"):
            load_plan(path)

    def test_load_rejects_missing_file(self, tmp_path):
        with pytest.raises(StoreError, match="cannot read"):
            load_plan(tmp_path / "absent.json")


class TestStalePlans:
    def test_tampered_digest_detected(self, quick_plan):
        runs = [dict(run) for run in quick_plan["runs"]]
        runs[0]["digest"] = "0" * 16
        stale = validate_plan({**quick_plan, "runs": runs})
        with pytest.raises(StoreError, match="stale"):
            sweep_service._rebuild_specs(stale)

    def test_bad_shard_index_rejected(self, quick_plan, tmp_path):
        store = ResultStore(tmp_path / "store")
        with pytest.raises(StoreError, match="shard"):
            run_shard(quick_plan, 3, store)


@pytest.mark.slow
class TestShardedRunParity:
    def test_three_shards_merge_to_direct_run(self, tmp_path):
        plan = build_plan("2", quick=True, shards=3)
        reports = []
        for shard in range(3):
            store = ResultStore(tmp_path / f"shard-{shard}")
            reports.append(
                run_shard(plan, shard, store, jobs=2)
            )
        assert sum(r.runs for r in reports) == plan["total_runs"]
        assert all(r.cached == 0 for r in reports)

        merged = ResultStore(tmp_path / "merged")
        report = merge_plan(
            plan,
            merged,
            sources=[tmp_path / f"shard-{s}" for s in range(3)],
            jobs=2,
        )
        assert report.absorbed == plan["total_runs"]
        assert report.cached == plan["total_runs"]
        assert report.computed == 0

        config = sweep_service.sweep_config(True, "exact")
        direct = fig2.run(
            config,
            bandwidths_kb=sweep_service.QUICK_BANDWIDTHS_KB,
            executor=SweepExecutor(jobs=1),
        )
        assert format_figure(
            report.result, precision=report.precision
        ) == format_figure(direct, precision=1)

    def test_merge_computes_missing_shards(self, tmp_path):
        plan = build_plan("2", quick=True, shards=3)
        # Only shard 0 ever ran: merge must compute the rest.
        store = ResultStore(tmp_path / "shard-0")
        report0 = run_shard(plan, 0, store, jobs=2)
        merged = ResultStore(tmp_path / "merged")
        report = merge_plan(
            plan, merged, sources=[tmp_path / "shard-0"], jobs=2
        )
        assert report.cached == report0.runs
        assert report.computed == plan["total_runs"] - report0.runs

    def test_rerunning_a_shard_is_all_cache_hits(self, tmp_path):
        plan = build_plan("2", quick=True, shards=3)
        store = ResultStore(tmp_path / "store")
        first = run_shard(plan, 0, store, jobs=2)
        second = run_shard(plan, 0, store, jobs=1)
        assert second.runs == first.runs
        assert second.cached == first.runs
        assert second.computed == 0


class TestCliSweep:
    @pytest.mark.slow
    def test_plan_run_merge_round_trip(
        self, tmp_path, capsys, monkeypatch
    ):
        from repro.cli import main

        monkeypatch.chdir(tmp_path)
        plan_path = tmp_path / "plan.json"
        assert main([
            "sweep", "plan", "--figure", "2", "--quick",
            "--shards", "2", "--output", str(plan_path),
        ]) == 0
        assert "2 shard(s)" in capsys.readouterr().out
        payload = json.loads(plan_path.read_text())
        assert payload["schema"] == SWEEP_SCHEMA

        for shard in ("0", "1"):
            assert main([
                "sweep", "run", str(plan_path),
                "--shard", shard,
                "--store", str(tmp_path / f"s{shard}"),
                "--jobs", "2",
            ]) == 0
        assert "shard 1/2" in capsys.readouterr().out

        assert main([
            "sweep", "merge", str(plan_path),
            "--store", str(tmp_path / "merged"),
            "--from", str(tmp_path / "s0"),
            "--from", str(tmp_path / "s1"),
        ]) == 0
        merged_out = capsys.readouterr()
        assert "fig2" in merged_out.out
        assert "0 computed" in merged_out.err

    def test_malformed_plan_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        bad = tmp_path / "bad.json"
        bad.write_text('{"schema": "nope"}')
        assert main([
            "sweep", "run", str(bad),
            "--shard", "0", "--store", str(tmp_path / "s"),
        ]) == 2
        assert "error:" in capsys.readouterr().err

    def test_bad_jobs_exits_2(self, tmp_path, capsys):
        from repro.cli import main

        assert main([
            "sweep", "run", str(tmp_path / "plan.json"),
            "--shard", "0", "--store", str(tmp_path / "s"),
            "--jobs", "0",
        ]) == 2
        assert "--jobs" in capsys.readouterr().err


@pytest.mark.slow
class TestOpsTelemetry:
    def test_run_shard_writes_span_log(self, quick_plan, tmp_path):
        store = ResultStore(tmp_path / "s0")
        report = run_shard(quick_plan, 0, store, jobs=1)
        spans = load_ops(shard_ops_path(store.root, 0))
        roots = [s for s in spans if s.parent is None]
        assert [s.name for s in roots] == ["shard"]
        assert roots[0].attrs["runs"] == report.runs
        assert roots[0].attrs["failed"] == 0
        cell_runs = [s for s in spans if s.name == "cell-run"]
        assert len(cell_runs) == report.runs
        commits = [s for s in spans if s.name == "store-commit"]
        assert len(commits) == report.computed
        # Every other span hangs off the shard root.
        assert all(
            s.parent == roots[0].id
            for s in spans
            if s is not roots[0]
        )

    def test_run_shard_writes_heartbeat(self, quick_plan, tmp_path):
        store = ResultStore(tmp_path / "s0")
        report = run_shard(quick_plan, 0, store, jobs=1)
        payload = read_heartbeat(heartbeat_path(store.root, 0))
        assert payload["schema"] == OPS_SCHEMA
        assert payload["state"] == "done"
        assert payload["shard"] == 0
        assert payload["shards"] == 3
        assert payload["pid"] == os.getpid()
        assert payload["runs_done"] == report.runs
        assert payload["runs_computed"] == report.computed
        assert payload["in_flight"] == 0

    def test_ops_false_writes_nothing(self, quick_plan, tmp_path):
        store = ResultStore(tmp_path / "s0")
        run_shard(quick_plan, 0, store, jobs=1, ops=False)
        assert not ops_root(store.root).exists()

    def test_merge_writes_span_log(self, quick_plan, tmp_path):
        shard_store = ResultStore(tmp_path / "s0")
        report0 = run_shard(quick_plan, 0, shard_store, jobs=1)
        merged = ResultStore(tmp_path / "merged")
        merge_plan(
            quick_plan, merged, sources=[shard_store.root], jobs=1
        )
        spans = load_ops(merge_ops_path(merged.root))
        roots = [s for s in spans if s.parent is None]
        assert [s.name for s in roots] == ["merge"]
        assert roots[0].attrs["absorbed"] == report0.runs
        absorbs = [s for s in spans if s.name == "store-absorb"]
        assert len(absorbs) == 1
        assert absorbs[0].attrs["copied"] == report0.runs


class TestFleetView:
    def beat(self, updated, shard=0, state="running", done=0,
             total=3, rate=None):
        return {
            "schema": OPS_SCHEMA,
            "kind": "heartbeat",
            "shard": shard,
            "shards": 3,
            "pid": 1,
            "state": state,
            "started": updated - 10.0,
            "updated": updated,
            "runs_total": total,
            "runs_done": done,
            "runs_computed": done,
            "runs_cached": 0,
            "runs_failed": 0,
            "in_flight": total - done,
            "last_commit": None,
            "rate_runs_per_s": rate,
            "eta_s": None,
        }

    def test_planned_counts_come_from_the_plan(self, quick_plan):
        statuses = fleet_status(quick_plan, [], now=0.0)
        assert len(statuses) == 3
        assert sum(s.planned for s in statuses) == 8
        assert all(s.state == "missing" for s in statuses)

    def test_stalled_shard_flagged_as_straggler(self, quick_plan):
        now = 1000.0
        statuses = fleet_status(
            quick_plan,
            [
                self.beat(now - 1.0, shard=0, done=2, rate=2.0),
                self.beat(now - 1.0, shard=1, done=2, rate=2.0),
                self.beat(now - 1.0, shard=2, done=1, rate=0.2),
            ],
            now=now,
        )
        assert [s.straggler for s in statuses] == [
            False, False, True,
        ]

    def test_killed_shard_detected_by_stale_heartbeat(
        self, quick_plan
    ):
        now = 1000.0
        statuses = fleet_status(
            quick_plan,
            [
                self.beat(now - 1.0, shard=0, done=3, state="done"),
                self.beat(now - 300.0, shard=1, done=1, rate=1.0),
            ],
            now=now,
            stale_after=30.0,
        )
        assert statuses[1].state == "dead"
        assert statuses[2].state == "missing"

    @pytest.mark.slow
    def test_cli_status_renders_fleet(
        self, quick_plan, tmp_path, capsys
    ):
        import time

        from repro.cli import main

        plan_path = tmp_path / "plan.json"
        dump_plan(quick_plan, plan_path)
        store = ResultStore(tmp_path / "s0")
        run_shard(quick_plan, 0, store, jobs=1)
        assert main([
            "sweep", "status", str(plan_path),
            "--store", str(store.root),
        ]) == 0
        out = capsys.readouterr().out
        assert "sweep fleet: figure 2 (quick)" in out
        assert "shard 0" in out
        assert "done" in out
        assert "no heartbeat" in out

        # A stale still-"running" heartbeat from a killed worker.
        dead = self.beat(time.time() - 300.0, shard=1, done=1)
        heartbeat_path(tmp_path / "s1", 1).parent.mkdir(
            parents=True, exist_ok=True
        )
        heartbeat_path(tmp_path / "s1", 1).write_text(
            json.dumps(dead), encoding="utf-8"
        )
        assert main([
            "sweep", "status", str(plan_path),
            "--store", str(store.root),
            "--store", str(tmp_path / "s1"),
        ]) == 0
        assert "DEAD" in capsys.readouterr().out
