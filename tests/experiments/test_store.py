"""Content-addressed result store: identity, parity, resumability.

The store's contract is threefold: (1) a run's cache key changes iff
something that determines the simulation's output changes, (2) a warm
sweep's merged results are byte-identical to the cold run at any
worker count, and (3) entries commit as runs finish, so an interrupted
sweep resumes from disk.
"""

from __future__ import annotations

import pickle
from dataclasses import replace

import pytest

from repro.core.policy import FixedPoolPolicy
from repro.errors import StoreError
from repro.experiments.config import ExperimentConfig
from repro.obs.context import Observability
from repro.parallel import (
    ResultStore,
    SplicerSpec,
    SweepExecutor,
    cell_for,
    run_identity,
)
from repro.parallel.spec import RunSpec


@pytest.fixture(scope="module")
def fast_config():
    return ExperimentConfig(n_leechers=3, seeds=(5, 9), max_time=600.0)


def _cells(config, video):
    return [
        cell_for(SplicerSpec("gop"), 512, config, video=video,
                 label="store/gop @ 512"),
        cell_for(SplicerSpec("duration", 4.0), 256, config,
                 video=video, label="store/duration-4s @ 256"),
    ]


def _spec(config, video, **overrides):
    cell = cell_for(
        SplicerSpec("duration", 4.0), 256, config, video=video
    )
    if overrides:
        cell = replace(cell, **overrides)
    return RunSpec(cell=cell, seed=5, cell_index=0, seed_index=0)


class TestRunIdentity:
    def test_identity_is_stable(self, fast_config, short_video):
        a = run_identity(_spec(fast_config, short_video))
        b = run_identity(_spec(fast_config, short_video))
        assert a == b

    def test_merge_keys_do_not_participate(
        self, fast_config, short_video
    ):
        base = _spec(fast_config, short_video)
        moved = replace(base, cell_index=3, seed_index=1)
        flagged = replace(
            base, collect_metrics=True, collect_analysis=True
        )
        assert run_identity(moved) == run_identity(base)
        assert run_identity(flagged) == run_identity(base)

    def test_seed_changes_identity(self, fast_config, short_video):
        base = _spec(fast_config, short_video)
        reseeded = replace(base, seed=6)
        assert run_identity(reseeded) != run_identity(base)

    def test_splicer_param_changes_identity(
        self, fast_config, short_video
    ):
        base = _spec(fast_config, short_video)
        resliced = _spec(
            fast_config, short_video,
            splicer=SplicerSpec("duration", 8.0),
        )
        assert run_identity(resliced) != run_identity(base)

    def test_fidelity_changes_identity(
        self, fast_config, short_video
    ):
        base = _spec(fast_config, short_video)
        tiered = _spec(fast_config, short_video, fidelity="cohort")
        assert run_identity(tiered) != run_identity(base)

    def test_policy_changes_identity(self, fast_config, short_video):
        base = _spec(fast_config, short_video)
        pooled = _spec(
            fast_config, short_video, policy=FixedPoolPolicy(2)
        )
        assert run_identity(pooled) != run_identity(base)

    def test_schema_changes_identity(self, fast_config, short_video):
        base = _spec(fast_config, short_video)
        assert run_identity(base, schema="repro.store/999") != (
            run_identity(base)
        )


class TestWarmSweep:
    def test_warm_rerun_hits_everything(
        self, fast_config, short_video, tmp_path
    ):
        cells = _cells(fast_config, short_video)
        store = ResultStore(tmp_path / "store")
        cold = SweepExecutor(jobs=1, store=store).run_cells(cells)
        warm_exec = SweepExecutor(jobs=1, store=store)
        warm = warm_exec.run_cells(cells)
        assert warm == cold  # exact float equality
        stats = warm_exec.stats
        assert stats.runs_cached == stats.runs == 4
        assert stats.cells_cached == len(cells)
        assert stats.cells_computed == 0
        assert stats.events_fired == 0  # nothing was simulated

    def test_warm_hits_at_any_worker_count(
        self, fast_config, short_video, tmp_path
    ):
        cells = _cells(fast_config, short_video)
        store = ResultStore(tmp_path / "store")
        cold = SweepExecutor(jobs=1, store=store).run_cells(cells)
        pooled_exec = SweepExecutor(jobs=4, store=store)
        pooled = pooled_exec.run_cells(cells)
        assert pooled == cold
        assert pooled_exec.stats.runs_cached == 4

    def test_cold_pooled_and_serial_fill_identical_stores(
        self, fast_config, short_video, tmp_path
    ):
        cells = _cells(fast_config, short_video)
        serial_store = ResultStore(tmp_path / "serial")
        pooled_store = ResultStore(tmp_path / "pooled")
        SweepExecutor(jobs=1, store=serial_store).run_cells(cells)
        SweepExecutor(jobs=4, store=pooled_store).run_cells(cells)
        assert serial_store.keys() == pooled_store.keys()

    def test_changed_cell_misses_unchanged_cells_hit(
        self, fast_config, short_video, tmp_path
    ):
        cells = _cells(fast_config, short_video)
        store = ResultStore(tmp_path / "store")
        SweepExecutor(jobs=1, store=store).run_cells(cells)
        edited = [
            cells[0],
            cell_for(
                SplicerSpec("duration", 8.0), 256, fast_config,
                video=short_video,
                label="store/duration-8s @ 256",
            ),
        ]
        rerun = SweepExecutor(jobs=1, store=store)
        rerun.run_cells(edited)
        stats = rerun.stats
        assert stats.runs_cached == 2  # cells[0]'s two seeds
        assert stats.cells_cached == 1
        assert stats.cells_computed == 1


class TestResumability:
    def test_partial_store_resumes(
        self, fast_config, short_video, tmp_path
    ):
        cells = _cells(fast_config, short_video)
        store = ResultStore(tmp_path / "store")
        # "Interrupted" sweep: only the first cell ever committed.
        SweepExecutor(jobs=1, store=store).run_cells(cells[:1])
        committed = len(store)
        resumed_exec = SweepExecutor(jobs=2, store=store)
        resumed = resumed_exec.run_cells(cells)
        stats = resumed_exec.stats
        assert stats.runs_cached == committed == 2
        assert stats.cells_cached == 1
        assert stats.cells_computed == 1
        cold = SweepExecutor(jobs=1).run_cells(cells)
        assert resumed == cold

    def test_commit_happens_per_run_not_per_sweep(
        self, fast_config, short_video, tmp_path
    ):
        cells = _cells(fast_config, short_video)[:1]
        store = ResultStore(tmp_path / "store")
        SweepExecutor(jobs=1, store=store).run_cells(cells)
        # Both of the cell's seeds were committed individually.
        assert len(store) == 2


class TestComponentGating:
    def test_metrics_less_entry_misses_when_metrics_needed(
        self, fast_config, short_video, tmp_path
    ):
        cells = _cells(fast_config, short_video)[:1]
        store = ResultStore(tmp_path / "store")
        SweepExecutor(jobs=1, store=store).run_cells(cells)
        obs = Observability.metrics_only()
        upgraded = SweepExecutor(jobs=1, store=store)
        upgraded.run_cells(cells, obs=obs)
        # Plain entries lack snapshots: the obs sweep recomputed...
        assert upgraded.stats.runs_cached == 0
        # ...and upgraded the entries, so a second obs sweep hits.
        second = SweepExecutor(jobs=1, store=store)
        second.run_cells(cells, obs=Observability.metrics_only())
        assert second.stats.runs_cached == 2

    def test_upgraded_entries_still_serve_plain_sweeps(
        self, fast_config, short_video, tmp_path
    ):
        cells = _cells(fast_config, short_video)[:1]
        store = ResultStore(tmp_path / "store")
        SweepExecutor(jobs=1, store=store).run_cells(
            cells, obs=Observability.metrics_only()
        )
        plain = SweepExecutor(jobs=1, store=store)
        plain.run_cells(cells)
        assert plain.stats.runs_cached == 2


class TestInvalidation:
    def test_schema_bump_orphans_old_entries(
        self, fast_config, short_video, tmp_path
    ):
        cells = _cells(fast_config, short_video)[:1]
        old = ResultStore(tmp_path / "store", schema="repro.store/0")
        SweepExecutor(jobs=1, store=old).run_cells(cells)
        # Same directory, current schema: the schema participates in
        # the key, so every old entry simply misses (different path).
        new = ResultStore(tmp_path / "store")
        rerun = SweepExecutor(jobs=1, store=new)
        rerun.run_cells(cells)
        assert rerun.stats.runs_cached == 0
        assert new.stats.misses == 2
        assert new.stats.stores == 2

    def test_schema_mismatch_inside_entry_invalidates(
        self, fast_config, short_video, tmp_path
    ):
        cell = _cells(fast_config, short_video)[1]
        spec = RunSpec(cell=cell, seed=5, cell_index=0, seed_index=0)
        old = ResultStore(tmp_path / "store", schema="repro.store/0")
        SweepExecutor(jobs=1, store=old).run_cells([cell])
        old_key = old.run_key(spec)
        new = ResultStore(tmp_path / "store")
        new_key = new.run_key(spec)
        # Plant the old-schema entry where the new schema looks.
        source = tmp_path / "store" / old_key[:2] / f"{old_key}.pkl"
        target = tmp_path / "store" / new_key[:2] / f"{new_key}.pkl"
        target.parent.mkdir(parents=True, exist_ok=True)
        target.write_bytes(source.read_bytes())
        assert new.get(spec) is None
        assert new.stats.invalidations == 1

    def test_corrupt_entry_invalidates(
        self, fast_config, short_video, tmp_path
    ):
        cells = _cells(fast_config, short_video)[:1]
        store = ResultStore(tmp_path / "store")
        SweepExecutor(jobs=1, store=store).run_cells(cells)
        for key in store.keys():
            (tmp_path / "store" / key[:2] / f"{key}.pkl").write_bytes(
                b"not a pickle"
            )
        rerun = SweepExecutor(jobs=1, store=store)
        outcome = rerun.run_cells(cells)
        assert rerun.stats.runs_cached == 0
        assert store.stats.invalidations == 2
        assert outcome  # recomputed fine

    def test_wrong_key_entry_invalidates(
        self, fast_config, short_video, tmp_path
    ):
        cell = _cells(fast_config, short_video)[0]
        spec_a = RunSpec(
            cell=cell, seed=5, cell_index=0, seed_index=0
        )
        spec_b = RunSpec(
            cell=cell, seed=9, cell_index=0, seed_index=1
        )
        store = ResultStore(tmp_path / "store")
        SweepExecutor(jobs=1, store=store).run_cells([cell])
        key_a = store.run_key(spec_a)
        key_b = store.run_key(spec_b)
        path_a = tmp_path / "store" / key_a[:2] / f"{key_a}.pkl"
        path_b = tmp_path / "store" / key_b[:2] / f"{key_b}.pkl"
        # Splice one run's entry under the other's key.
        path_a.parent.mkdir(parents=True, exist_ok=True)
        path_a.write_bytes(path_b.read_bytes())
        before = store.stats.invalidations
        assert store.get(spec_a) is None
        assert store.stats.invalidations == before + 1


class TestStoreApi:
    def test_put_rejects_failed_outcome(
        self, fast_config, short_video, tmp_path
    ):
        from repro.parallel.worker import RunOutcome

        store = ResultStore(tmp_path / "store")
        failed = RunOutcome(
            cell_index=0, seed_index=0, seed=5, label="x",
            error="boom",
        )
        with pytest.raises(StoreError):
            store.put(_spec(fast_config, short_video), failed)

    def test_entries_never_carry_profiles(
        self, fast_config, short_video, tmp_path
    ):
        cells = _cells(fast_config, short_video)[:1]
        store = ResultStore(tmp_path / "store")
        SweepExecutor(jobs=1, store=store).run_cells(cells)
        for key in store.keys():
            raw = (
                tmp_path / "store" / key[:2] / f"{key}.pkl"
            ).read_bytes()
            entry = pickle.loads(raw)
            assert entry["outcome"].profile is None
            assert entry["outcome"].cached is False

    def test_absorb_unions_stores(
        self, fast_config, short_video, tmp_path
    ):
        cells = _cells(fast_config, short_video)
        left = ResultStore(tmp_path / "left")
        right = ResultStore(tmp_path / "right")
        SweepExecutor(jobs=1, store=left).run_cells(cells[:1])
        SweepExecutor(jobs=1, store=right).run_cells(cells[1:])
        merged = ResultStore(tmp_path / "merged")
        assert merged.absorb(left) == 2
        assert merged.absorb(right) == 2
        assert merged.absorb(left) == 0  # already present
        assert len(merged) == 4
        warm = SweepExecutor(jobs=1, store=merged)
        warm.run_cells(cells)
        assert warm.stats.runs_cached == 4

    def test_clear_empties_the_store(
        self, fast_config, short_video, tmp_path
    ):
        store = ResultStore(tmp_path / "store")
        SweepExecutor(jobs=1, store=store).run_cells(
            _cells(fast_config, short_video)[:1]
        )
        assert store.clear() == 2
        assert len(store) == 0


class TestStoreCounters:
    def test_store_traffic_reaches_obs_registry(
        self, fast_config, short_video, tmp_path
    ):
        cells = _cells(fast_config, short_video)[:1]
        store = ResultStore(tmp_path / "store")
        cold_obs = Observability.metrics_only()
        SweepExecutor(jobs=1, store=store).run_cells(
            cells, obs=cold_obs
        )
        cold = {
            name: counter.value
            for name, counter
            in cold_obs.registry.counters().items()
        }
        assert cold["parallel.cache.store.misses"] == 2
        assert cold["parallel.cache.store.stores"] == 2
        # Zero-valued counters are never materialized.
        assert cold.get("parallel.cache.store.hits", 0) == 0
        warm_obs = Observability.metrics_only()
        SweepExecutor(jobs=1, store=store).run_cells(
            cells, obs=warm_obs
        )
        warm = {
            name: counter.value
            for name, counter
            in warm_obs.registry.counters().items()
        }
        assert warm["parallel.cache.store.hits"] == 2
        assert warm.get("parallel.cache.store.misses", 0) == 0
        assert warm.get("parallel.cache.store.stores", 0) == 0

    def test_no_store_no_store_counters(
        self, fast_config, short_video
    ):
        cells = _cells(fast_config, short_video)[:1]
        obs = Observability.metrics_only()
        SweepExecutor(jobs=1).run_cells(cells, obs=obs)
        names = set(obs.registry.counters())
        assert not any(
            name.startswith("parallel.cache.store.")
            for name in names
        )
